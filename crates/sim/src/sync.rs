//! Shared synchronization objects: barriers, locks, atomics, work-shared
//! loops (with `ordered` support) and `single` constructs.
//!
//! Objects hold pure state; all timing decisions (who pays what, who wakes
//! whom) are made by the engine. Every object carries a `span_factor`, the
//! topology multiplier applied to its contention costs — 1.0 when all
//! participants share a NUMA domain, up to the configured cross-socket
//! factor when they span sockets (set by the runtime layer that creates
//! the objects).

use crate::task::{CorunClass, TaskId};
use std::collections::VecDeque;

/// Schedule kind of a work-shared loop, mirroring `omp for schedule(...)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoopSchedule {
    /// `schedule(static, chunk)`: chunks assigned round-robin at compile
    /// time; no shared state, negligible dispatch cost.
    Static {
        /// Chunk size in iterations.
        chunk: u64,
    },
    /// `schedule(dynamic, chunk)`: chunks grabbed from a shared counter;
    /// dispatch cost grows with contention.
    Dynamic {
        /// Chunk size in iterations.
        chunk: u64,
    },
    /// `schedule(guided, min_chunk)`: exponentially shrinking chunks of at
    /// least `min_chunk` iterations, grabbed from a shared counter.
    Guided {
        /// Minimum chunk size in iterations.
        min_chunk: u64,
    },
}

/// Specification of a work-shared loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopSpec {
    /// Schedule kind.
    pub schedule: LoopSchedule,
    /// Total iterations of the loop (across all threads).
    pub total_iters: u64,
    /// Team size participating in the loop.
    pub n_threads: usize,
    /// Compute cycles of one loop-body iteration.
    pub body_cycles: f64,
    /// SMT class of the body.
    pub body_class: CorunClass,
    /// Fixed per-iteration ordered-section duration, if this is an
    /// `ordered` loop (per-iteration tickets are then enforced).
    pub ordered_section_ns: Option<f64>,
    /// For dynamic schedules: how many chunks one grab hands out. This is
    /// a simulation-granularity knob (events per loop scale as
    /// `1/batch`), not a semantic change: cost is still charged per chunk
    /// and load balancing happens at `batch × chunk` granularity.
    pub batch: u32,
    /// Topology contention multiplier of the team (≥ 1.0).
    pub span_factor: f64,
}

impl LoopSpec {
    fn chunks_total(&self, chunk: u64) -> u64 {
        self.total_iters.div_ceil(chunk)
    }
}

/// One grab's worth of work handed to a task.
///
/// For dynamic, guided and per-chunk static grabs, `[first_iter,
/// first_iter + iters)` is the exact contiguous range. For the aggregated
/// static fast path (non-ordered static loops with `batch > 1`), a thread
/// receives *all* of its round-robin chunks in one grab: `iters` is the
/// exact count but the underlying iterations are interleaved with other
/// threads', and `first_iter` is only the first iteration of the thread's
/// first chunk. Ordered loops never take the aggregated path, so ticket
/// indices are always exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grab {
    /// First iteration index of the grabbed work (see type docs for the
    /// aggregated-static caveat).
    pub first_iter: u64,
    /// Number of iterations grabbed.
    pub iters: u64,
    /// Number of logical dispatch operations this grab amortizes (for
    /// overhead pricing: `n_grabs × per-grab cost`).
    pub n_grabs: u64,
}

/// Work-shared loop state.
#[derive(Debug)]
pub struct LoopObj {
    /// Immutable specification.
    pub spec: LoopSpec,
    /// Pass (generation) counter: incremented each time all threads have
    /// observed exhaustion, so the same object can be reused across
    /// repetitions.
    pub generation: u64,
    /// Next unassigned iteration (dynamic/guided).
    next_iter: u64,
    /// Threads that have entered the loop this generation.
    pub entered: usize,
    /// Threads that have observed exhaustion this generation.
    finished: usize,
    /// Ordered-ticket state: next iteration allowed into the section.
    pub ordered_next: u64,
    /// Tasks spinning for their ordered ticket, keyed by iteration.
    pub ordered_waiters: Vec<(u64, TaskId)>,
    /// Effect counter: total iterations handed out across all generations.
    pub iters_executed: u64,
    /// Effect counter: completed passes (generation resets).
    pub passes: u64,
    /// Effect counter: completed ordered sections across all generations.
    pub ordered_done: u64,
}

impl LoopObj {
    /// New loop object from a spec.
    pub fn new(spec: LoopSpec) -> Self {
        assert!(spec.total_iters > 0, "loop must have iterations");
        assert!(spec.n_threads > 0, "loop needs threads");
        assert!(spec.batch >= 1, "batch must be ≥ 1");
        if let LoopSchedule::Static { chunk } | LoopSchedule::Dynamic { chunk } = spec.schedule {
            assert!(chunk > 0, "chunk must be positive");
        }
        if let LoopSchedule::Guided { min_chunk } = spec.schedule {
            assert!(min_chunk > 0, "min_chunk must be positive");
        }
        LoopObj {
            spec,
            generation: 0,
            next_iter: 0,
            entered: 0,
            finished: 0,
            ordered_next: 0,
            ordered_waiters: Vec::new(),
            iters_executed: 0,
            passes: 0,
            ordered_done: 0,
        }
    }

    /// Threads concurrently inside the loop this generation (contention
    /// proxy for dispatch pricing).
    pub fn active(&self) -> usize {
        self.entered.saturating_sub(self.finished)
    }

    /// Grab the next piece of work for the task with team rank `rank`,
    /// whose private static position is tracked in `(task_gen, task_pos)`
    /// (owned by the task, managed here).
    ///
    /// Returns `None` when the loop is exhausted for this thread; the
    /// caller must then invoke [`LoopObj::observe_exhausted`] exactly once.
    pub fn grab(&mut self, rank: usize, task_gen: &mut u64, task_pos: &mut u64) -> Option<Grab> {
        let g = self.grab_inner(rank, task_gen, task_pos);
        if let Some(g) = g {
            self.iters_executed += g.iters;
        }
        g
    }

    fn grab_inner(&mut self, rank: usize, task_gen: &mut u64, task_pos: &mut u64) -> Option<Grab> {
        if *task_gen != self.generation {
            *task_gen = self.generation;
            *task_pos = 0;
            self.entered += 1;
        }
        let n = self.spec.n_threads as u64;
        match self.spec.schedule {
            LoopSchedule::Static { chunk } => {
                let total_chunks = self.spec.chunks_total(chunk);
                if self.spec.ordered_section_ns.is_some() || self.spec.batch == 1 {
                    // One chunk per grab (required for ordered semantics).
                    let chunk_idx = *task_pos * n + rank as u64;
                    if chunk_idx >= total_chunks {
                        return None;
                    }
                    *task_pos += 1;
                    let first = chunk_idx * chunk;
                    let iters = chunk.min(self.spec.total_iters - first);
                    Some(Grab {
                        first_iter: first,
                        iters,
                        n_grabs: 1,
                    })
                } else {
                    // Hand out the thread's whole share at once; dispatch
                    // cost still charged per chunk.
                    if *task_pos > 0 {
                        return None;
                    }
                    *task_pos = u64::MAX;
                    let mut iters = 0u64;
                    let mut k = rank as u64;
                    let mut n_grabs = 0u64;
                    let mut first = None;
                    while k < total_chunks {
                        let start = k * chunk;
                        iters += chunk.min(self.spec.total_iters - start);
                        first.get_or_insert(start);
                        n_grabs += 1;
                        k += n;
                    }
                    if iters == 0 {
                        return None;
                    }
                    Some(Grab {
                        first_iter: first.unwrap(),
                        iters,
                        n_grabs,
                    })
                }
            }
            LoopSchedule::Dynamic { chunk } => {
                if self.next_iter >= self.spec.total_iters {
                    return None;
                }
                let batch = if self.spec.ordered_section_ns.is_some() {
                    1
                } else {
                    self.spec.batch as u64
                };
                let first = self.next_iter;
                let want = (chunk * batch).min(self.spec.total_iters - first);
                self.next_iter += want;
                Some(Grab {
                    first_iter: first,
                    iters: want,
                    n_grabs: want.div_ceil(chunk),
                })
            }
            LoopSchedule::Guided { min_chunk } => {
                if self.next_iter >= self.spec.total_iters {
                    return None;
                }
                let remaining = self.spec.total_iters - self.next_iter;
                let size = remaining.div_ceil(2 * n).max(min_chunk).min(remaining);
                let first = self.next_iter;
                self.next_iter += size;
                Some(Grab {
                    first_iter: first,
                    iters: size,
                    n_grabs: 1,
                })
            }
        }
    }

    /// Record that one thread observed exhaustion. When all threads have,
    /// the loop resets for the next generation. Returns `true` on reset.
    pub fn observe_exhausted(&mut self) -> bool {
        self.finished += 1;
        debug_assert!(self.finished <= self.spec.n_threads);
        if self.finished == self.spec.n_threads {
            self.passes += 1;
            self.generation += 1;
            self.next_iter = 0;
            self.entered = 0;
            self.finished = 0;
            self.ordered_next = 0;
            debug_assert!(self.ordered_waiters.is_empty());
            true
        } else {
            false
        }
    }

    /// Ordered support: is iteration `iter` allowed into the section now?
    pub fn ticket_ready(&self, iter: u64) -> bool {
        self.ordered_next == iter
    }

    /// Ordered support: the section for the current ticket completed.
    /// Advances the ticket and pops the waiter for the next iteration, if
    /// it is already spinning.
    pub fn ticket_advance(&mut self) -> Option<TaskId> {
        self.ordered_done += 1;
        self.ordered_next += 1;
        let next = self.ordered_next;
        if let Some(pos) = self.ordered_waiters.iter().position(|&(i, _)| i == next) {
            Some(self.ordered_waiters.swap_remove(pos).1)
        } else {
            None
        }
    }
}

/// Barrier state.
#[derive(Debug)]
pub struct BarrierObj {
    /// Team size.
    pub n: usize,
    /// Threads arrived in the current round.
    pub arrived: usize,
    /// Tasks spin-waiting for the release.
    pub waiters: Vec<TaskId>,
    /// CPU of the most recent arriver (used to price release distance).
    pub last_cpu: usize,
    /// Topology contention multiplier (≥ 1.0).
    pub span_factor: f64,
    /// Effect counter: total per-thread arrivals across all rounds.
    pub arrivals: u64,
    /// Recycled waiter storage: `release` hands the caller the waiter
    /// list and installs this spare in its place, so a barrier executed
    /// round after round re-uses two allocations instead of growing a
    /// fresh `Vec` every round. Give drained lists back via
    /// [`BarrierObj::recycle`].
    spare: Vec<TaskId>,
}

impl BarrierObj {
    /// New barrier for a team of `n`.
    pub fn new(n: usize, span_factor: f64) -> Self {
        assert!(n > 0);
        BarrierObj {
            n,
            arrived: 0,
            waiters: Vec::with_capacity(n),
            last_cpu: 0,
            span_factor,
            arrivals: 0,
            spare: Vec::new(),
        }
    }

    /// Register an arrival. Returns `true` when this arrival completes the
    /// round (the caller then drains `waiters` and resets).
    pub fn arrive(&mut self, cpu: usize) -> bool {
        self.arrivals += 1;
        self.arrived += 1;
        self.last_cpu = cpu;
        debug_assert!(self.arrived <= self.n);
        self.arrived == self.n
    }

    /// Reset after a completed round, returning the waiter list.
    ///
    /// The returned `Vec` should come back through
    /// [`BarrierObj::recycle`] once drained; until then the barrier runs
    /// on its spare storage.
    pub fn release(&mut self) -> Vec<TaskId> {
        self.arrived = 0;
        let out = std::mem::take(&mut self.waiters);
        self.waiters = std::mem::take(&mut self.spare);
        out
    }

    /// Return a drained waiter list taken from [`BarrierObj::release`]
    /// so the next round re-uses its capacity.
    pub fn recycle(&mut self, mut v: Vec<TaskId>) {
        v.clear();
        if v.capacity() > self.spare.capacity() {
            self.spare = v;
        }
    }
}

/// Spin-lock state (used for `critical`, explicit locks, and serialized
/// reduction combines).
#[derive(Debug)]
pub struct LockObj {
    /// Current holder.
    pub holder: Option<TaskId>,
    /// Tasks spin-waiting for the lock, FIFO handoff.
    pub queue: VecDeque<TaskId>,
    /// Topology contention multiplier (≥ 1.0).
    pub span_factor: f64,
    /// Effect counter: times the lock was entered (ownership installed).
    pub entries: u64,
}

impl LockObj {
    /// New free lock.
    pub fn new(span_factor: f64) -> Self {
        LockObj {
            holder: None,
            queue: VecDeque::new(),
            span_factor,
            entries: 0,
        }
    }

    /// Try to acquire for `t`: returns `true` on success, otherwise queues.
    pub fn acquire(&mut self, t: TaskId) -> bool {
        if self.holder.is_none() {
            self.holder = Some(t);
            self.entries += 1;
            true
        } else {
            self.queue.push_back(t);
            false
        }
    }

    /// Release by `t`; returns the next holder (already installed), if any.
    pub fn release(&mut self, t: TaskId) -> Option<TaskId> {
        assert_eq!(self.holder, Some(t), "release by non-holder");
        self.holder = self.queue.pop_front();
        if self.holder.is_some() {
            self.entries += 1;
        }
        self.holder
    }
}

/// Contended-atomic state: tracks how many tasks are currently executing
/// an RMW on this object so the engine can price new ones.
#[derive(Debug)]
pub struct AtomicObj {
    /// In-flight RMW count.
    pub active: usize,
    /// Topology contention multiplier (≥ 1.0).
    pub span_factor: f64,
    /// Effect counter: total RMW operations started.
    pub ops: u64,
}

impl AtomicObj {
    /// New idle atomic.
    pub fn new(span_factor: f64) -> Self {
        AtomicObj {
            active: 0,
            span_factor,
            ops: 0,
        }
    }
}

/// `single` construct state.
#[derive(Debug)]
pub struct SingleObj {
    /// Team size.
    pub n: usize,
    /// Total entries so far; entry `k` wins iff `k % n == 0`. Correct as
    /// long as rounds are separated by a barrier (which the OpenMP
    /// `single` construct's implicit barrier guarantees).
    pub count: u64,
    /// Effect counter: rounds won (bodies actually executed).
    pub wins: u64,
}

impl SingleObj {
    /// New `single` tracker for a team of `n`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        SingleObj { n, count: 0, wins: 0 }
    }

    /// Register an entry; returns `true` for the round's winner.
    pub fn enter(&mut self) -> bool {
        let win = self.count.is_multiple_of(self.n as u64);
        self.count += 1;
        if win {
            self.wins += 1;
        }
        win
    }
}

/// Explicit-task pool (`omp task` / `taskwait` semantics).
///
/// Spawned tasks queue here; team threads execute them at scheduling
/// points (task-wait), and a thread at task-wait with an empty queue
/// spins until every outstanding task has completed.
#[derive(Debug)]
pub struct TaskPoolObj {
    /// Queued, not-yet-started task bodies (compute cycles each).
    pub pending: VecDeque<f64>,
    /// Tasks spawned but not yet finished (queued + executing).
    pub outstanding: usize,
    /// Threads spin-waiting for `outstanding == 0`.
    pub waiters: Vec<TaskId>,
    /// Topology contention multiplier (≥ 1.0).
    pub span_factor: f64,
    /// Team size stealing from this pool (dispatch-contention proxy).
    pub participants: usize,
    /// Threads spawning concurrently into this pool (spawn-contention
    /// proxy: 1 for a master-only producer, the team size for
    /// all-threads-spawn patterns).
    pub spawners: usize,
    /// Effect counter: total tasks ever spawned into the pool.
    pub spawned: u64,
    /// Effect counter: total tasks that ran to completion.
    pub executed: u64,
    /// Recycled waiter storage (see [`BarrierObj::recycle`]): the drain
    /// in [`TaskPoolObj::complete`] hands out the waiter list and runs
    /// on this spare until the caller gives the list back.
    spare: Vec<TaskId>,
}

impl TaskPoolObj {
    /// New empty pool for a team of `participants` with `spawners`
    /// concurrent producers.
    pub fn new(span_factor: f64, participants: usize, spawners: usize) -> Self {
        assert!(participants > 0 && spawners > 0);
        TaskPoolObj {
            pending: VecDeque::new(),
            outstanding: 0,
            waiters: Vec::new(),
            span_factor,
            participants,
            spawners,
            spawned: 0,
            executed: 0,
            spare: Vec::new(),
        }
    }

    /// Spawn one task of `cycles` body work.
    pub fn spawn(&mut self, cycles: f64) {
        self.pending.push_back(cycles);
        self.outstanding += 1;
        self.spawned += 1;
    }

    /// Grab the next queued task body, if any.
    pub fn steal(&mut self) -> Option<f64> {
        self.pending.pop_front()
    }

    /// One task finished. Returns the waiters to wake when the pool
    /// drained completely.
    ///
    /// A non-empty return should come back through
    /// [`TaskPoolObj::recycle`] once drained (an empty one is
    /// allocation-free and can simply be dropped).
    pub fn complete(&mut self) -> Vec<TaskId> {
        debug_assert!(self.outstanding > 0);
        self.outstanding -= 1;
        self.executed += 1;
        if self.outstanding == 0 {
            let out = std::mem::take(&mut self.waiters);
            self.waiters = std::mem::take(&mut self.spare);
            out
        } else {
            Vec::new()
        }
    }

    /// Return a drained waiter list taken from [`TaskPoolObj::complete`]
    /// so later task-waits re-use its capacity.
    pub fn recycle(&mut self, mut v: Vec<TaskId>) {
        v.clear();
        if v.capacity() > self.spare.capacity() {
            self.spare = v;
        }
    }
}

/// The engine's sync-object table entry.
#[derive(Debug)]
pub enum SyncObj {
    /// Barrier.
    Barrier(BarrierObj),
    /// Lock.
    Lock(LockObj),
    /// Work-shared loop.
    Loop(LoopObj),
    /// Contended atomic.
    Atomic(AtomicObj),
    /// `single` tracker.
    Single(SingleObj),
    /// Explicit-task pool.
    TaskPool(TaskPoolObj),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(schedule: LoopSchedule, total: u64, n: usize) -> LoopSpec {
        LoopSpec {
            schedule,
            total_iters: total,
            n_threads: n,
            body_cycles: 1.0,
            body_class: CorunClass::Latency,
            ordered_section_ns: None,
            batch: 1,
            span_factor: 1.0,
        }
    }

    /// Drive a loop to exhaustion for all threads, returning per-thread
    /// iteration counts and checking the partition property.
    fn drain(obj: &mut LoopObj) -> Vec<u64> {
        let n = obj.spec.n_threads;
        let mut got = vec![0u64; n];
        let mut gens = vec![u64::MAX; n];
        let mut poss = vec![0u64; n];
        let mut covered = vec![false; obj.spec.total_iters as usize];
        let mut done = vec![false; n];
        // Round-robin grabbing to mimic concurrent threads.
        while done.iter().any(|d| !d) {
            for r in 0..n {
                if done[r] {
                    continue;
                }
                match obj.grab(r, &mut gens[r], &mut poss[r]) {
                    Some(g) => {
                        got[r] += g.iters;
                        for i in g.first_iter..g.first_iter + g.iters {
                            assert!(!covered[i as usize], "iteration {i} double-assigned");
                            covered[i as usize] = true;
                        }
                    }
                    None => {
                        done[r] = true;
                        obj.observe_exhausted();
                    }
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "not all iterations covered");
        got
    }

    #[test]
    fn static_partitions_exactly() {
        let mut l = LoopObj::new(spec(LoopSchedule::Static { chunk: 3 }, 100, 4));
        let got = drain(&mut l);
        assert_eq!(got.iter().sum::<u64>(), 100);
        // static,3 over 100 iters: 34 chunks round-robin.
        assert_eq!(got[0], 3 * 9); // chunks 0,4,8,...,32 → 9 chunks
    }

    #[test]
    fn dynamic_partitions_exactly_with_batching() {
        for batch in [1u32, 4, 16] {
            let mut s = spec(LoopSchedule::Dynamic { chunk: 2 }, 101, 3);
            s.batch = batch;
            let mut l = LoopObj::new(s);
            let got = drain(&mut l);
            assert_eq!(got.iter().sum::<u64>(), 101);
        }
    }

    #[test]
    fn guided_chunks_shrink() {
        let mut l = LoopObj::new(spec(LoopSchedule::Guided { min_chunk: 1 }, 1000, 4));
        let mut gen = u64::MAX;
        let mut pos = 0;
        let first = l.grab(0, &mut gen, &mut pos).unwrap();
        let second = l.grab(0, &mut gen, &mut pos).unwrap();
        assert_eq!(first.iters, 125); // 1000 / (2*4)
        assert!(second.iters <= first.iters);
        // Guided also covers everything exactly once.
        let mut l = LoopObj::new(spec(LoopSchedule::Guided { min_chunk: 7 }, 500, 3));
        let got = drain(&mut l);
        assert_eq!(got.iter().sum::<u64>(), 500);
    }

    #[test]
    fn loop_resets_for_next_generation() {
        let mut l = LoopObj::new(spec(LoopSchedule::Dynamic { chunk: 5 }, 10, 2));
        let g0 = l.generation;
        drain(&mut l);
        assert_eq!(l.generation, g0 + 1);
        // Second pass also covers everything.
        let got = drain(&mut l);
        assert_eq!(got.iter().sum::<u64>(), 10);
    }

    #[test]
    #[allow(clippy::while_let_loop)]
    fn dynamic_load_follows_grabbing_speed() {
        // A thread that grabs twice as often gets roughly twice the work.
        let mut l = LoopObj::new(spec(LoopSchedule::Dynamic { chunk: 1 }, 90, 2));
        let (mut g0, mut p0, mut g1, mut p1) = (u64::MAX, 0, u64::MAX, 0);
        let mut got = [0u64; 2];
        loop {
            match l.grab(0, &mut g0, &mut p0) {
                Some(g) => got[0] += g.iters,
                None => break,
            }
            match l.grab(0, &mut g0, &mut p0) {
                Some(g) => got[0] += g.iters,
                None => break,
            }
            match l.grab(1, &mut g1, &mut p1) {
                Some(g) => got[1] += g.iters,
                None => break,
            }
        }
        assert!(got[0] > got[1]);
    }

    #[test]
    fn barrier_round_trip() {
        let mut b = BarrierObj::new(3, 1.0);
        assert!(!b.arrive(0));
        b.waiters.push(TaskId(0));
        assert!(!b.arrive(1));
        b.waiters.push(TaskId(1));
        assert!(b.arrive(2));
        let w = b.release();
        assert_eq!(w.len(), 2);
        assert_eq!(b.arrived, 0);
    }

    #[test]
    fn lock_fifo_handoff() {
        let mut l = LockObj::new(1.0);
        assert!(l.acquire(TaskId(1)));
        assert!(!l.acquire(TaskId(2)));
        assert!(!l.acquire(TaskId(3)));
        assert_eq!(l.release(TaskId(1)), Some(TaskId(2)));
        assert_eq!(l.release(TaskId(2)), Some(TaskId(3)));
        assert_eq!(l.release(TaskId(3)), None);
    }

    #[test]
    #[should_panic(expected = "non-holder")]
    fn lock_release_by_non_holder_panics() {
        let mut l = LockObj::new(1.0);
        l.acquire(TaskId(1));
        l.release(TaskId(2));
    }

    #[test]
    fn single_one_winner_per_round() {
        let mut s = SingleObj::new(4);
        let wins: Vec<bool> = (0..8).map(|_| s.enter()).collect();
        assert_eq!(wins.iter().filter(|&&w| w).count(), 2);
        assert!(wins[0] && wins[4]);
    }

    #[test]
    fn task_pool_spawn_steal_complete() {
        let mut p = TaskPoolObj::new(1.0, 4, 4);
        p.spawn(10.0);
        p.spawn(20.0);
        assert_eq!(p.outstanding, 2);
        assert_eq!(p.steal(), Some(10.0));
        assert!(p.complete().is_empty());
        p.waiters.push(TaskId(5));
        assert_eq!(p.steal(), Some(20.0));
        assert_eq!(p.steal(), None);
        assert_eq!(p.complete(), vec![TaskId(5)]);
        assert_eq!(p.outstanding, 0);
    }

    #[test]
    fn ordered_tickets_advance_and_wake() {
        let mut l = LoopObj::new(LoopSpec {
            ordered_section_ns: Some(10.0),
            ..spec(LoopSchedule::Static { chunk: 1 }, 4, 2)
        });
        assert!(l.ticket_ready(0));
        assert!(!l.ticket_ready(1));
        l.ordered_waiters.push((1, TaskId(9)));
        assert_eq!(l.ticket_advance(), Some(TaskId(9)));
        assert!(l.ticket_ready(1));
        assert_eq!(l.ticket_advance(), None);
    }
}
