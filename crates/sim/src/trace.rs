//! Simulation outputs: markers, frequency traces and counters.

use crate::task::{TaskId, TaskStats};
use crate::time::Time;
use ompvar_obs::{RunAttribution, Trace};

/// One timestamped marker emitted by a task's `Mark` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkerRecord {
    /// Virtual time of the marker.
    pub time: Time,
    /// Emitting task.
    pub task: TaskId,
    /// Marker id chosen by the program author.
    pub marker: u32,
}

/// One sample of the frequency logger: the frequency of every *core*
/// (physical core, not hardware thread) at `time`.
#[derive(Debug, Clone, PartialEq)]
pub struct FreqSample {
    /// Virtual time of the sample.
    pub time: Time,
    /// Per-core frequency in GHz (idle cores report their idle frequency,
    /// as the Linux `scaling_cur_freq` sysfs file does).
    pub core_ghz: Vec<f32>,
}

/// Aggregate engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Counters {
    /// Kernel-noise arrivals that preempted a user task.
    pub preemptions: u64,
    /// Task migrations between hardware threads.
    pub migrations: u64,
    /// Total noise arrivals (including those landing on idle CPUs).
    pub noise_events: u64,
    /// Total CPU time consumed by noise tasks (ns).
    pub noise_busy: Time,
    /// Timer ticks charged to running tasks.
    pub ticks: u64,
    /// Socket frequency retargets (any change of the applied frequency).
    pub freq_transitions: u64,
    /// Events processed by the engine.
    pub events: u64,
    /// Fault injections delivered from the fault plan.
    pub faults_injected: u64,
    /// Sync-object wakeups swallowed by a lost-wakeup fault.
    pub lost_wakeups: u64,
}

/// Schedule-independent semantic effects of one region run.
///
/// Every field is a deterministic function of the executed region — not
/// of thread interleaving, schedule kind, or timing — so two correct
/// backends executing the same region must agree on all of them exactly.
/// The differential fuzzer (`ompvar-qcheck`) compares these against each
/// other and against the statically predicted effects of the construct
/// tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SemanticEffects {
    /// Per-thread barrier arrivals (team size × completed rounds).
    pub barrier_arrivals: u64,
    /// Critical/lock section entries (mutual-exclusion oracle).
    pub lock_entries: u64,
    /// Reduction combine operations (one per thread per reduction).
    pub reduction_combines: u64,
    /// Atomic RMW operations.
    pub atomic_ops: u64,
    /// Work-shared loop iterations executed, summed over all loops.
    pub loop_iters: u64,
    /// Completed work-shared loop passes (generations).
    pub loop_passes: u64,
    /// Ordered-section entries completed in ticket order.
    pub ordered_entries: u64,
    /// `single` construct entries (every thread reaching the construct).
    pub single_entries: u64,
    /// `single` bodies executed — exactly one per round.
    pub single_winners: u64,
    /// Explicit tasks spawned.
    pub tasks_spawned: u64,
    /// Explicit tasks executed to completion.
    pub tasks_executed: u64,
    /// Observed mutual-exclusion violations (must be zero).
    pub mutex_violations: u64,
    /// Observed ordered-sequence violations (must be zero).
    pub ordered_violations: u64,
}

/// Per-sync-object effect counters surfaced by the engine, indexed by
/// [`crate::task::ObjId`] in allocation order. The runtime layer, which
/// knows which construct each object belongs to, folds these into a
/// [`SemanticEffects`] summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjEffects {
    /// Barrier: total per-thread arrivals.
    Barrier {
        /// Arrivals across all rounds.
        arrivals: u64,
    },
    /// Lock: total entries.
    Lock {
        /// Times the lock was entered.
        entries: u64,
    },
    /// Work-shared loop.
    Loop {
        /// Iterations handed out across all generations.
        iters: u64,
        /// Completed passes (generation resets).
        passes: u64,
        /// Completed ordered sections.
        ordered_done: u64,
    },
    /// Contended atomic: total RMW operations.
    Atomic {
        /// RMW operations started.
        ops: u64,
    },
    /// `single` tracker.
    Single {
        /// Entries (every thread reaching the construct).
        entries: u64,
        /// Rounds won (bodies executed).
        winners: u64,
    },
    /// Explicit-task pool.
    TaskPool {
        /// Tasks spawned into the pool.
        spawned: u64,
        /// Tasks executed to completion.
        executed: u64,
    },
}

/// Everything the simulator reports after a run.
#[derive(Clone, Default)]
pub struct SimReport {
    /// Virtual time when the last user task finished.
    pub final_time: Time,
    /// User tasks still unfinished when the run stopped (nonzero only
    /// when the virtual-time limit cut the run short — e.g. a deadlocked
    /// barrier).
    pub unfinished: usize,
    /// All markers, in emission order.
    pub markers: Vec<MarkerRecord>,
    /// Frequency-logger samples (empty when the logger was not enabled).
    pub freq_samples: Vec<FreqSample>,
    /// Aggregate counters.
    pub counters: Counters,
    /// Per-user-task statistics, indexed by spawn order.
    pub task_stats: Vec<(TaskId, TaskStats)>,
    /// Per-sync-object effect counters, indexed by object id in
    /// allocation order (see [`ObjEffects`]).
    pub obj_effects: Vec<ObjEffects>,
    /// Construct span/instant timeline; `Some` iff tracing was enabled
    /// via [`crate::engine::Simulator::enable_tracing`].
    pub trace: Option<Trace>,
    /// Causal time-attribution ledger; `Some` iff attribution was enabled
    /// via [`crate::engine::Simulator::enable_attribution`].
    pub attribution: Option<RunAttribution>,
}

/// Hand-written so the rendering with `attribution: None` is
/// byte-identical to the pre-attribution derived output: the golden
/// determinism digests hash `format!("{report:?}")`, and adding a trailing
/// `attribution: None` field would have perturbed all of them. The field
/// is only rendered when present.
impl std::fmt::Debug for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("SimReport");
        d.field("final_time", &self.final_time)
            .field("unfinished", &self.unfinished)
            .field("markers", &self.markers)
            .field("freq_samples", &self.freq_samples)
            .field("counters", &self.counters)
            .field("task_stats", &self.task_stats)
            .field("obj_effects", &self.obj_effects)
            .field("trace", &self.trace);
        if self.attribution.is_some() {
            d.field("attribution", &self.attribution);
        }
        d.finish()
    }
}

impl SimReport {
    /// Times of every marker with id `marker`, emitted by `task`, in order.
    pub fn marker_times(&self, task: TaskId, marker: u32) -> Vec<Time> {
        self.markers
            .iter()
            .filter(|m| m.task == task && m.marker == marker)
            .map(|m| m.time)
            .collect()
    }

    /// Durations between consecutive `(begin, end)` marker pairs of a
    /// task: the canonical way to extract per-repetition times.
    ///
    /// # Panics
    ///
    /// Panics if begin/end markers are unpaired or interleaved out of
    /// order — that indicates a malformed program.
    pub fn intervals(&self, task: TaskId, begin: u32, end: u32) -> Vec<Time> {
        let b = self.marker_times(task, begin);
        let e = self.marker_times(task, end);
        assert_eq!(
            b.len(),
            e.len(),
            "unpaired begin/end markers ({} vs {})",
            b.len(),
            e.len()
        );
        b.iter()
            .zip(e.iter())
            .map(|(&tb, &te)| {
                assert!(te >= tb, "end marker before begin marker");
                te - tb
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_pair_up() {
        let r = SimReport {
            markers: vec![
                MarkerRecord { time: 10, task: TaskId(0), marker: 1 },
                MarkerRecord { time: 25, task: TaskId(0), marker: 2 },
                MarkerRecord { time: 30, task: TaskId(0), marker: 1 },
                MarkerRecord { time: 70, task: TaskId(0), marker: 2 },
                MarkerRecord { time: 5, task: TaskId(1), marker: 1 },
            ],
            ..Default::default()
        };
        assert_eq!(r.intervals(TaskId(0), 1, 2), vec![15, 40]);
        assert_eq!(r.marker_times(TaskId(1), 1), vec![5]);
    }

    #[test]
    #[should_panic(expected = "unpaired")]
    fn unpaired_markers_panic() {
        let r = SimReport {
            markers: vec![MarkerRecord { time: 10, task: TaskId(0), marker: 1 }],
            ..Default::default()
        };
        r.intervals(TaskId(0), 1, 2);
    }
}
