//! The discrete-event core: event kinds and the time-ordered queue.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Kinds of events processed by the engine.
///
/// Several kinds carry a `token`: a generation counter used to invalidate
/// stale events. When the engine reprices a CPU's current work (because of
/// preemption, a frequency change, or SMT state change) it bumps the CPU's
/// token; the previously scheduled boundary event then no-ops when popped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The running span on `cpu` reaches a boundary: its current op
    /// completes, or its scheduling quantum expires.
    CpuBoundary {
        /// Hardware thread.
        cpu: usize,
        /// Generation token (stale events no-op).
        token: u64,
    },
    /// Next arrival of noise source `src`.
    NoiseArrival {
        /// Noise-stream index.
        src: u32,
    },
    /// Periodic scheduler/timer tick on a busy `cpu`.
    TimerTick {
        /// Hardware thread.
        cpu: usize,
        /// Tick-chain generation token.
        token: u64,
    },
    /// Periodic load-balancing pass over all CPUs.
    LoadBalance,
    /// Re-evaluate the DVFS state of `socket` after its active-core count
    /// changed (fires after the governor's reaction latency).
    FreqReeval {
        /// Socket index.
        socket: usize,
    },
    /// Stochastic turbo/dip transition of `socket`'s frequency process.
    FreqPulse {
        /// Socket index.
        socket: usize,
        /// Pulse-chain generation token.
        token: u64,
    },
    /// The frequency logger samples all core frequencies.
    FreqSample,
    /// A scheduled fault injection fires (index into the fault plan).
    FaultStart {
        /// Fault-plan index.
        idx: u32,
    },
    /// A timed fault window ends (CPU back online, frequency cap lifted).
    FaultEnd {
        /// Fault-plan index.
        idx: u32,
    },
    /// Next arrival of an active noise storm.
    FaultStormTick {
        /// Fault-plan index.
        idx: u32,
    },
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: Time,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        // Ties broken by insertion sequence for determinism.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered event queue with deterministic FIFO tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<HeapEntry>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(1024),
            seq: 0,
        }
    }

    /// Schedule `kind` at absolute time `time`.
    pub fn push(&mut self, time: Time, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapEntry { time, seq, kind });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, EventKind)> {
        self.heap.pop().map(|e| (e.time, e.kind))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, EventKind::LoadBalance);
        q.push(10, EventKind::FreqSample);
        q.push(20, EventKind::LoadBalance);
        assert_eq!(q.pop().unwrap().0, 10);
        assert_eq!(q.pop().unwrap().0, 20);
        assert_eq!(q.pop().unwrap().0, 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(5, EventKind::CpuBoundary { cpu: 1, token: 0 });
        q.push(5, EventKind::CpuBoundary { cpu: 2, token: 0 });
        q.push(5, EventKind::CpuBoundary { cpu: 3, token: 0 });
        let order: Vec<usize> = (0..3)
            .map(|_| match q.pop().unwrap().1 {
                EventKind::CpuBoundary { cpu, .. } => cpu,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, EventKind::LoadBalance);
        q.push(2, EventKind::LoadBalance);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
