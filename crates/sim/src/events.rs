//! The discrete-event core: event kinds and the time-ordered queue.
//!
//! The queue has two interchangeable implementations behind one API:
//!
//! * **Packed** (default): a 4-ary min-heap over a single `Vec` of
//!   `(key, kind)` entries, where `key` packs `(time, seq)` into one
//!   `u128` so ordering is a single integer compare. A 4-ary layout
//!   halves the tree depth of a binary heap and keeps sift-down's
//!   child scan inside one or two cache lines — the classic DES
//!   event-queue layout (`(next_tick, id)` min-heap).
//! * **Reference**: the original `std::collections::BinaryHeap` of
//!   `HeapEntry` with a reversed `Ord`. Kept verbatim as the
//!   independently implemented yardstick: qcheck oracle #11 and the
//!   determinism golden suite hold the two paths to bit-identical
//!   pop streams.
//!
//! Both implementations pop in ascending `(time, seq)` order — earliest
//! first, ties broken FIFO by insertion sequence — which is what makes
//! the engine's replay deterministic.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Kinds of events processed by the engine.
///
/// Several kinds carry a `token`: a generation counter used to invalidate
/// stale events. When the engine reprices a CPU's current work (because of
/// preemption, a frequency change, or SMT state change) it bumps the CPU's
/// token; the previously scheduled boundary event then no-ops when popped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The running span on `cpu` reaches a boundary: its current op
    /// completes, or its scheduling quantum expires.
    CpuBoundary {
        /// Hardware thread.
        cpu: usize,
        /// Generation token (stale events no-op).
        token: u64,
    },
    /// Next arrival of noise source `src`.
    NoiseArrival {
        /// Noise-stream index.
        src: u32,
    },
    /// Periodic scheduler/timer tick on a busy `cpu`.
    TimerTick {
        /// Hardware thread.
        cpu: usize,
        /// Tick-chain generation token.
        token: u64,
    },
    /// Periodic load-balancing pass over all CPUs.
    LoadBalance,
    /// Re-evaluate the DVFS state of `socket` after its active-core count
    /// changed (fires after the governor's reaction latency).
    FreqReeval {
        /// Socket index.
        socket: usize,
    },
    /// Stochastic turbo/dip transition of `socket`'s frequency process.
    FreqPulse {
        /// Socket index.
        socket: usize,
        /// Pulse-chain generation token.
        token: u64,
    },
    /// The frequency logger samples all core frequencies.
    FreqSample,
    /// A scheduled fault injection fires (index into the fault plan).
    FaultStart {
        /// Fault-plan index.
        idx: u32,
    },
    /// A timed fault window ends (CPU back online, frequency cap lifted).
    FaultEnd {
        /// Fault-plan index.
        idx: u32,
    },
    /// Next arrival of an active noise storm.
    FaultStormTick {
        /// Fault-plan index.
        idx: u32,
    },
}

/// Pack `(time, seq)` into one ordered key: ascending `u128` order is
/// ascending time with FIFO tie-break.
#[inline]
fn pack(time: Time, seq: u64) -> u128 {
    ((time as u128) << 64) | seq as u128
}

#[inline]
fn unpack_time(key: u128) -> Time {
    (key >> 64) as Time
}

// ---------------------------------------------------------------------
// Optimized path: packed-key 4-ary min-heap
// ---------------------------------------------------------------------

/// 4-ary min-heap over packed keys. Entries live in one contiguous
/// `Vec`; each sift-down step scans at most four children that sit next
/// to each other in memory.
#[derive(Debug, Default)]
struct PackedHeap {
    entries: Vec<(u128, EventKind)>,
}

impl PackedHeap {
    const ARITY: usize = 4;

    fn with_capacity(cap: usize) -> Self {
        PackedHeap {
            entries: Vec::with_capacity(cap),
        }
    }

    #[inline]
    fn push(&mut self, key: u128, kind: EventKind) {
        self.entries.push((key, kind));
        // Sift up.
        let mut i = self.entries.len() - 1;
        while i > 0 {
            let parent = (i - 1) / Self::ARITY;
            if self.entries[parent].0 <= self.entries[i].0 {
                break;
            }
            self.entries.swap(i, parent);
            i = parent;
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(u128, EventKind)> {
        let n = self.entries.len();
        if n == 0 {
            return None;
        }
        self.entries.swap(0, n - 1);
        let top = self.entries.pop();
        // Sift down.
        let n = self.entries.len();
        let mut i = 0;
        loop {
            let first = i * Self::ARITY + 1;
            if first >= n {
                break;
            }
            let last = (first + Self::ARITY).min(n);
            let mut best = first;
            for c in first + 1..last {
                if self.entries[c].0 < self.entries[best].0 {
                    best = c;
                }
            }
            if self.entries[best].0 >= self.entries[i].0 {
                break;
            }
            self.entries.swap(i, best);
            i = best;
        }
        top
    }

    #[inline]
    fn peek(&self) -> Option<&(u128, EventKind)> {
        self.entries.first()
    }

    /// Smallest key excluding the root: the minimum over the root's
    /// children (every other entry is dominated by one of them).
    #[inline]
    fn second_key(&self) -> Option<u128> {
        let n = self.entries.len();
        if n < 2 {
            return None;
        }
        self.entries[1..n.min(1 + Self::ARITY)]
            .iter()
            .map(|e| e.0)
            .min()
    }
}

// ---------------------------------------------------------------------
// Reference path: the original BinaryHeap layout, kept verbatim
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: Time,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        // Ties broken by insertion sequence for determinism.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug)]
enum QueueImpl {
    Packed(PackedHeap),
    Reference(BinaryHeap<HeapEntry>),
}

/// Time-ordered event queue with deterministic FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue {
    imp: QueueImpl,
    seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl EventQueue {
    /// An empty queue on the optimized (packed 4-ary heap) path.
    pub fn new() -> Self {
        EventQueue {
            imp: QueueImpl::Packed(PackedHeap::with_capacity(1024)),
            seq: 0,
        }
    }

    /// An empty queue on the reference (`BinaryHeap`) path.
    pub fn new_reference() -> Self {
        EventQueue {
            imp: QueueImpl::Reference(BinaryHeap::with_capacity(1024)),
            seq: 0,
        }
    }

    /// Is this the reference implementation?
    pub fn is_reference(&self) -> bool {
        matches!(self.imp, QueueImpl::Reference(_))
    }

    /// Schedule `kind` at absolute time `time`.
    #[inline]
    pub fn push(&mut self, time: Time, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        match &mut self.imp {
            QueueImpl::Packed(h) => h.push(pack(time, seq), kind),
            QueueImpl::Reference(h) => h.push(HeapEntry { time, seq, kind }),
        }
    }

    /// Pop the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, EventKind)> {
        match &mut self.imp {
            QueueImpl::Packed(h) => h.pop().map(|(k, kind)| (unpack_time(k), kind)),
            QueueImpl::Reference(h) => h.pop().map(|e| (e.time, e.kind)),
        }
    }

    /// The earliest pending event, without removing it. Only served on
    /// the optimized path (the reference path predates it and must stay
    /// byte-for-byte the original implementation); callers treat `None`
    /// as "fast paths unavailable".
    #[inline]
    pub fn peek(&self) -> Option<(Time, &EventKind)> {
        match &self.imp {
            QueueImpl::Packed(h) => h.peek().map(|(k, kind)| (unpack_time(*k), kind)),
            QueueImpl::Reference(_) => None,
        }
    }

    /// The time of the earliest pending event *excluding* the head, on
    /// the optimized path. `None` when fewer than two events are pending
    /// or on the reference path. Used by the engine's idle-period
    /// fast-forward to bound how far a tick chain can be batched.
    #[inline]
    pub fn second_time(&self) -> Option<Time> {
        match &self.imp {
            QueueImpl::Packed(h) => h.second_key().map(unpack_time),
            QueueImpl::Reference(_) => None,
        }
    }

    /// Burn `n` sequence numbers without pushing. The idle-period
    /// fast-forward uses this so a batched tick chain leaves the seq
    /// counter — and therefore every future FIFO tie-break — exactly
    /// where the unbatched pop/push loop would have left it.
    #[inline]
    pub fn bump_seq(&mut self, n: u64) {
        self.seq += n;
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.imp {
            QueueImpl::Packed(h) => h.entries.len(),
            QueueImpl::Reference(h) => h.len(),
        }
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [EventQueue; 2] {
        [EventQueue::new(), EventQueue::new_reference()]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both() {
            q.push(30, EventKind::LoadBalance);
            q.push(10, EventKind::FreqSample);
            q.push(20, EventKind::LoadBalance);
            assert_eq!(q.pop().unwrap().0, 10);
            assert_eq!(q.pop().unwrap().0, 20);
            assert_eq!(q.pop().unwrap().0, 30);
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn ties_break_fifo() {
        for mut q in both() {
            q.push(5, EventKind::CpuBoundary { cpu: 1, token: 0 });
            q.push(5, EventKind::CpuBoundary { cpu: 2, token: 0 });
            q.push(5, EventKind::CpuBoundary { cpu: 3, token: 0 });
            let order: Vec<usize> = (0..3)
                .map(|_| match q.pop().unwrap().1 {
                    EventKind::CpuBoundary { cpu, .. } => cpu,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(order, vec![1, 2, 3]);
        }
    }

    #[test]
    fn len_tracks_contents() {
        for mut q in both() {
            assert!(q.is_empty());
            q.push(1, EventKind::LoadBalance);
            q.push(2, EventKind::LoadBalance);
            assert_eq!(q.len(), 2);
            q.pop();
            assert_eq!(q.len(), 1);
        }
    }

    #[test]
    fn peek_and_second_time_on_packed() {
        let mut q = EventQueue::new();
        assert!(q.peek().is_none());
        assert!(q.second_time().is_none());
        q.push(40, EventKind::LoadBalance);
        assert_eq!(q.peek().unwrap().0, 40);
        assert!(q.second_time().is_none());
        q.push(10, EventKind::FreqSample);
        q.push(25, EventKind::LoadBalance);
        assert_eq!(q.peek().unwrap().0, 10);
        assert_eq!(q.second_time(), Some(25));
        q.pop();
        assert_eq!(q.peek().unwrap().0, 25);
        assert_eq!(q.second_time(), Some(40));
    }

    #[test]
    fn reference_declines_fast_path_queries() {
        let mut q = EventQueue::new_reference();
        q.push(1, EventKind::LoadBalance);
        q.push(2, EventKind::LoadBalance);
        assert!(q.peek().is_none());
        assert!(q.second_time().is_none());
    }

    #[test]
    fn packed_and_reference_pop_identically() {
        // Deterministic pseudo-random interleaving of pushes and pops.
        let mut a = EventQueue::new();
        let mut b = EventQueue::new_reference();
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..5000 {
            let r = step();
            if r % 3 != 0 || a.is_empty() {
                let t = (step() % 64) as Time;
                let kind = EventKind::CpuBoundary {
                    cpu: (step() % 8) as usize,
                    token: step() % 4,
                };
                a.push(t, kind);
                b.push(t, kind);
            } else {
                assert_eq!(a.pop(), b.pop());
            }
        }
        while !a.is_empty() {
            assert_eq!(a.pop(), b.pop());
        }
        assert_eq!(a.pop(), None);
        assert_eq!(b.pop(), None);
    }
}
