//! Typed simulation errors: the watchdog's structured error taxonomy.
//!
//! `Simulator::run` returns `Result<SimReport, SimError>` instead of
//! panicking on a deadlocked run or silently truncating at the virtual
//! time limit. Every variant carries enough diagnostics to name the
//! culprit: a deadlock lists each unfinished task and the barrier/lock
//! it spins on; limit/budget overruns carry the partial report gathered
//! so far so callers can still inspect degraded results.

use crate::task::{ObjId, TaskId};
use crate::time::Time;
use crate::trace::SimReport;
use std::fmt;

/// What an unfinished task was waiting on when the run was declared dead.
///
/// A lightweight descriptor of the sync object's state at diagnosis time
/// (the objects themselves are not clonable out of the engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockedOn {
    /// Spinning at a barrier that never fills.
    Barrier {
        /// Barrier object.
        obj: ObjId,
        /// Arrivals so far this round.
        arrived: usize,
        /// Participants required.
        team: usize,
    },
    /// Spinning on a lock.
    Lock {
        /// Lock object.
        obj: ObjId,
        /// Current holder, if any.
        holder: Option<TaskId>,
    },
    /// Spinning for an `ordered` ticket that never comes up.
    OrderedTicket {
        /// Loop object.
        obj: ObjId,
        /// Iteration the task waits to enter.
        iter: u64,
        /// Ticket currently allowed in.
        next: u64,
    },
    /// Spinning at a task-wait for a pool that never drains.
    TaskPool {
        /// Pool object.
        obj: ObjId,
        /// Explicit tasks still outstanding.
        outstanding: usize,
    },
    /// Runnable but never reached a CPU (queued behind the deadlock).
    Starved,
}

impl fmt::Display for BlockedOn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockedOn::Barrier { obj, arrived, team } => {
                write!(f, "barrier #{} ({arrived}/{team} arrived)", obj.0)
            }
            BlockedOn::Lock { obj, holder } => match holder {
                Some(h) => write!(f, "lock #{} (held by task {})", obj.0, h.0),
                None => write!(f, "lock #{} (unheld)", obj.0),
            },
            BlockedOn::OrderedTicket { obj, iter, next } => {
                write!(f, "ordered ticket {iter} of loop #{} (next is {next})", obj.0)
            }
            BlockedOn::TaskPool { obj, outstanding } => {
                write!(f, "task pool #{} ({outstanding} outstanding)", obj.0)
            }
            BlockedOn::Starved => write!(f, "run queue (never dispatched)"),
        }
    }
}

/// One unfinished task and what it was blocked on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedTask {
    /// The unfinished user task.
    pub task: TaskId,
    /// What it was waiting for.
    pub wait: BlockedOn,
}

impl fmt::Display for BlockedTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task {} waiting on {}", self.task.0, self.wait)
    }
}

/// A failed simulation run.
#[derive(Debug, Clone)]
pub enum SimError {
    /// No event can ever wake the remaining user tasks: either the event
    /// queue drained with tasks unfinished, or every unfinished task is
    /// spin-waiting with nothing left that could release it.
    Deadlock {
        /// Virtual time of diagnosis.
        time: Time,
        /// Every unfinished user task and its wait target.
        blocked: Vec<BlockedTask>,
    },
    /// The virtual-time limit passed while tasks still made progress.
    TimeLimitExceeded {
        /// The limit that tripped.
        limit: Time,
        /// Everything gathered up to the limit.
        partial: Box<SimReport>,
    },
    /// The optional event budget was exhausted (runaway-event backstop).
    EventBudgetExceeded {
        /// The budget that tripped.
        budget: u64,
        /// Everything gathered up to the budget.
        partial: Box<SimReport>,
    },
    /// A micro-op was dispatched against a sync object of the wrong kind
    /// — a malformed program (e.g. a lock acquire on a barrier id).
    ObjectTypeMismatch {
        /// The offending operation.
        op: &'static str,
        /// The object it addressed.
        obj: ObjId,
        /// The object kind the operation requires.
        expected: &'static str,
        /// The kind actually registered under that id.
        found: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { time, blocked } => {
                write!(f, "simulation deadlock at t={time}ns: ")?;
                if blocked.is_empty() {
                    write!(f, "no blocked-task diagnostics available")
                } else {
                    let list: Vec<String> = blocked.iter().map(|b| b.to_string()).collect();
                    write!(f, "{}", list.join("; "))
                }
            }
            SimError::TimeLimitExceeded { limit, partial } => write!(
                f,
                "virtual-time limit {limit}ns exceeded with {} user task(s) unfinished",
                partial.unfinished
            ),
            SimError::EventBudgetExceeded { budget, partial } => write!(
                f,
                "event budget {budget} exceeded with {} user task(s) unfinished",
                partial.unfinished
            ),
            SimError::ObjectTypeMismatch {
                op,
                obj,
                expected,
                found,
            } => write!(
                f,
                "{op} on object #{} expects a {expected}, found a {found}",
                obj.0
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_display_names_blocked_tasks() {
        let e = SimError::Deadlock {
            time: 500,
            blocked: vec![
                BlockedTask {
                    task: TaskId(1),
                    wait: BlockedOn::Barrier {
                        obj: ObjId(0),
                        arrived: 2,
                        team: 3,
                    },
                },
                BlockedTask {
                    task: TaskId(2),
                    wait: BlockedOn::Lock {
                        obj: ObjId(4),
                        holder: Some(TaskId(7)),
                    },
                },
            ],
        };
        let s = e.to_string();
        assert!(s.contains("task 1 waiting on barrier #0 (2/3 arrived)"), "{s}");
        assert!(s.contains("task 2 waiting on lock #4 (held by task 7)"), "{s}");
    }

    #[test]
    fn mismatch_display_names_op_and_kinds() {
        let e = SimError::ObjectTypeMismatch {
            op: "LockAcquire",
            obj: ObjId(3),
            expected: "lock",
            found: "barrier",
        };
        assert_eq!(
            e.to_string(),
            "LockAcquire on object #3 expects a lock, found a barrier"
        );
    }

    #[test]
    fn limit_display_reports_unfinished() {
        let partial = SimReport {
            unfinished: 2,
            ..Default::default()
        };
        let e = SimError::TimeLimitExceeded {
            limit: 1_000,
            partial: Box::new(partial),
        };
        assert!(e.to_string().contains("2 user task(s) unfinished"));
    }
}
