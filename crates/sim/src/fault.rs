//! Seeded, composable fault injectors.
//!
//! A [`FaultPlan`] is a list of timed fault events attached to a
//! [`Simulator`](crate::engine::Simulator) before `run()`. Each fault is
//! delivered through the ordinary event queue, and all randomness a fault
//! needs (storm arrival times, victim selection) flows from a dedicated
//! per-fault sub-stream of the simulation seed — so the same seed yields
//! a bit-identical injection schedule, and adding a plan never perturbs
//! the streams the rest of the model consumes.
//!
//! Injectors model the hostile conditions the paper's real clusters can
//! exhibit but a clean simulation never shows by itself:
//!
//! * **noise storms** — a burst period of kernel-task arrivals far above
//!   the background noise level (an antagonist job, a logging daemon gone
//!   wild);
//! * **CPU offline/hotplug** — a hardware thread is evacuated mid-run and
//!   later returned (thermal shutdown, `cpu0` hotplug maintenance);
//! * **thermal frequency capping** — a socket's DVFS is clamped below its
//!   turbo bins for a window (power/thermal throttling);
//! * **stalled tasks** — one thread loses a chunk of progress at once (a
//!   major page fault, an SMI);
//! * **lost wakeups** — a sync-object release fails to reach its waiter,
//!   the classic runtime bug that turns into a silent hang. This one is
//!   expected to *deadlock* the run; the watchdog must report it.

use crate::time::Time;

/// One fault kind with its parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// A burst of kernel-noise arrivals on random online CPUs for
    /// `duration`, with exponential inter-arrivals of mean
    /// `mean_interval` and lognormal task durations (median
    /// `median_task`, shape `sigma`).
    NoiseStorm {
        /// Storm length (virtual time).
        duration: Time,
        /// Mean inter-arrival time (ns).
        mean_interval: Time,
        /// Median kernel-task duration (ns).
        median_task: Time,
        /// Lognormal shape parameter of task durations.
        sigma: f64,
    },
    /// Take hardware thread `cpu` offline, evacuating its tasks; brought
    /// back after `duration` (or never, when `None`). The last online
    /// CPU is never taken down.
    CpuOffline {
        /// Hardware thread to offline.
        cpu: usize,
        /// Offline window; `None` keeps it down for the rest of the run.
        duration: Option<Time>,
    },
    /// Clamp the applied frequency of one socket (or all sockets when
    /// `None`) to at most `cap_ghz`, lifted after `duration`.
    FreqCap {
        /// Target socket, or all sockets.
        socket: Option<usize>,
        /// Frequency ceiling in GHz.
        cap_ghz: f64,
        /// Capping window; `None` caps for the rest of the run.
        duration: Option<Time>,
    },
    /// Charge one user task `stall_ns` of opaque overhead at once —
    /// by team rank, or a seeded random unfinished task when `None`.
    TaskStall {
        /// Victim team rank; `None` picks a seeded random victim.
        rank: Option<usize>,
        /// Stall size in max-frequency nanoseconds.
        stall_ns: f64,
    },
    /// Silently drop the next `count` sync-object wakeups. The dropped
    /// waiter spins forever: this fault *creates* a deadlock for the
    /// watchdog to diagnose.
    LostWakeups {
        /// Number of wakeups to swallow.
        count: u32,
    },
}

/// A fault scheduled at a virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Injection time.
    pub at: Time,
    /// What to inject.
    pub fault: Fault,
}

/// An ordered collection of fault injections for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults, in push order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects anything.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Schedule an arbitrary fault at `at` (builder style).
    pub fn at(mut self, at: Time, fault: Fault) -> Self {
        self.events.push(FaultEvent { at, fault });
        self
    }

    /// Schedule a noise storm.
    pub fn noise_storm(
        self,
        at: Time,
        duration: Time,
        mean_interval: Time,
        median_task: Time,
        sigma: f64,
    ) -> Self {
        self.at(
            at,
            Fault::NoiseStorm {
                duration,
                mean_interval,
                median_task,
                sigma,
            },
        )
    }

    /// Schedule a CPU offline window.
    pub fn cpu_offline(self, at: Time, cpu: usize, duration: Option<Time>) -> Self {
        self.at(at, Fault::CpuOffline { cpu, duration })
    }

    /// Schedule a frequency cap window.
    pub fn freq_cap(
        self,
        at: Time,
        socket: Option<usize>,
        cap_ghz: f64,
        duration: Option<Time>,
    ) -> Self {
        self.at(
            at,
            Fault::FreqCap {
                socket,
                cap_ghz,
                duration,
            },
        )
    }

    /// Schedule a single-task stall.
    pub fn task_stall(self, at: Time, rank: Option<usize>, stall_ns: f64) -> Self {
        self.at(at, Fault::TaskStall { rank, stall_ns })
    }

    /// Schedule lost wakeups.
    pub fn lost_wakeups(self, at: Time, count: u32) -> Self {
        self.at(at, Fault::LostWakeups { count })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MS;

    #[test]
    fn builder_accumulates_in_order() {
        let plan = FaultPlan::new()
            .noise_storm(MS, 2 * MS, 10_000, 5_000, 0.5)
            .cpu_offline(3 * MS, 1, Some(MS))
            .lost_wakeups(5 * MS, 1);
        assert_eq!(plan.events.len(), 3);
        assert_eq!(plan.events[0].at, MS);
        assert!(matches!(plan.events[2].fault, Fault::LostWakeups { count: 1 }));
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }
}
