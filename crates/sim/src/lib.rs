#![warn(missing_docs)]

//! # ompvar-sim — discrete-event simulator of a multicore node
//!
//! This crate is the hardware/OS substrate of the `ompvar` study: a
//! deterministic, seeded discrete-event simulation of a shared-memory node
//! with
//!
//! * per-hardware-thread run queues with kernel-priority preemption,
//!   round-robin quanta for oversubscribed CPUs, wake placement and a
//!   periodic load balancer (migrations with cache-warmup penalties);
//! * OS noise sources (per-CPU kernel housekeeping, node-global daemons
//!   that prefer idle CPUs, random-CPU IRQ bursts);
//! * a DVFS model with active-core-count turbo bins, governor reaction
//!   latency and stochastic droop pulses in unstable few-core turbo
//!   states;
//! * SMT co-run slowdowns sensitive to the workload's IPC class;
//! * a NUMA bandwidth model with per-domain contention and remote-access
//!   penalties;
//! * synchronization objects (barriers, locks, atomics, work-shared loops
//!   with static/dynamic/guided schedules and `ordered`, `single`) whose
//!   costs scale with contention and topology spread.
//!
//! Simulated threads execute [`task::Program`]s; per-repetition times are
//! extracted from [`trace::SimReport`] markers. Everything is reproducible
//! from one `u64` seed.
//!
//! ```
//! use ompvar_sim::prelude::*;
//! use ompvar_topology::MachineSpec;
//!
//! let machine = MachineSpec::vera();
//! let mut sim = Simulator::new(machine, SimParams::sterile(), 42);
//! let barrier = sim.add_barrier(2, 1.0);
//! for rank in 0..2 {
//!     let prog = Program::builder()
//!         .mark(0)
//!         .compute(1e6, CorunClass::Latency)
//!         .barrier(barrier)
//!         .mark(1)
//!         .build();
//!     sim.spawn_user(rank, prog, None);
//! }
//! let report = sim.run(ompvar_sim::time::SEC).expect("run completes");
//! assert_eq!(report.markers.len(), 4);
//! ```

pub mod engine;
pub mod error;
pub mod events;
pub mod fault;
pub mod params;
pub mod rng;
pub mod sync;
pub mod task;
pub mod time;
pub mod trace;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::engine::Simulator;
    pub use crate::error::{BlockedOn, BlockedTask, SimError};
    pub use crate::fault::{Fault, FaultEvent, FaultPlan};
    pub use crate::params::{
        FreqParams, MemParams, NoiseParams, NoisePlacement, NoiseSource, SchedParams, SimParams,
        SmtParams, SyncCosts,
    };
    pub use crate::rng::Rng;
    pub use crate::sync::{Grab, LoopSchedule, LoopSpec};
    pub use crate::task::{CorunClass, ObjId, Op, Program, TaskId};
    pub use crate::time::{Time, MS, SEC, US};
    pub use crate::trace::{
        Counters, FreqSample, MarkerRecord, ObjEffects, SemanticEffects, SimReport,
    };
}
