//! Virtual time for the simulator.
//!
//! Time is an integer number of nanoseconds since simulation start. All
//! model arithmetic happens in `f64` (cycles, bytes, rates) and is rounded
//! to whole nanoseconds when events are scheduled, which keeps the event
//! order deterministic across runs of the same seed.

/// Virtual time in nanoseconds.
pub type Time = u64;

/// One microsecond in [`Time`] units.
pub const US: Time = 1_000;
/// One millisecond in [`Time`] units.
pub const MS: Time = 1_000_000;
/// One second in [`Time`] units.
pub const SEC: Time = 1_000_000_000;

/// Convert a fractional nanosecond quantity to [`Time`], rounding up so a
/// nonzero duration never becomes zero (which could livelock the engine).
#[inline]
pub fn from_ns_f64(ns: f64) -> Time {
    debug_assert!(ns.is_finite() && ns >= 0.0, "bad duration {ns}");
    if ns <= 0.0 {
        0
    } else {
        // Clamp so that `now + duration` can never overflow u64 in any
        // realistic run (2^62 ns ≈ 146 years of virtual time).
        (ns.ceil() as u64).clamp(1, u64::MAX / 4)
    }
}

/// Convert microseconds (float) to [`Time`].
#[inline]
pub fn from_us_f64(us: f64) -> Time {
    from_ns_f64(us * 1e3)
}

/// Express a [`Time`] in microseconds as `f64` (for reporting).
#[inline]
pub fn as_us(t: Time) -> f64 {
    t as f64 / 1e3
}

/// Express a [`Time`] in milliseconds as `f64` (for reporting).
#[inline]
pub fn as_ms(t: Time) -> f64 {
    t as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_never_produces_zero_for_positive_input() {
        assert_eq!(from_ns_f64(0.0), 0);
        assert_eq!(from_ns_f64(0.1), 1);
        assert_eq!(from_ns_f64(1.0), 1);
        assert_eq!(from_ns_f64(1.2), 2);
    }

    #[test]
    fn unit_constants() {
        assert_eq!(US * 1_000, MS);
        assert_eq!(MS * 1_000, SEC);
        assert_eq!(as_us(1500), 1.5);
        assert_eq!(as_ms(2_500_000), 2.5);
        assert_eq!(from_us_f64(2.5), 2_500);
    }
}
