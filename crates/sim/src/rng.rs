//! Deterministic pseudo-random number generation for the simulator.
//!
//! Reproducibility is a hard requirement: every figure in the paper
//! reproduction must be regenerable bit-for-bit from a single `u64` seed.
//! To avoid depending on external RNG crates whose streams may change
//! across versions, the simulator carries its own implementation of
//! SplitMix64 (for seeding and stream derivation) and xoshiro256++ (the
//! workhorse generator), both from the public-domain reference algorithms
//! by Blackman & Vigna.
//!
//! Independent *named sub-streams* are derived with [`Rng::fork`], so that
//! e.g. the noise model and the frequency model never share a stream and
//! adding draws to one cannot perturb the other.

/// SplitMix64 step: advances `state` and returns the next output.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string, used to turn stream labels into seeds.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second normal deviate from the Box–Muller transform.
    cached_normal: Option<f64>,
}

impl Rng {
    /// Create a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            cached_normal: None,
        }
    }

    /// Derive an independent sub-stream identified by `label` and `index`.
    ///
    /// Forking is stable: the child stream depends only on the parent seed
    /// material, the label and the index — not on how many numbers the
    /// parent has generated... as long as `fork` is called on a freshly
    /// seeded parent. By convention the engine forks everything from the
    /// root RNG at construction time.
    pub fn fork(&self, label: &str, index: u64) -> Rng {
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ fnv1a(label.as_bytes())
            ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            cached_normal: None,
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential deviate with the given mean (`mean > 0`).
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Avoid ln(0): f64() < 1 always, so 1 - f64() > 0.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Standard normal deviate (Box–Muller, cached pair).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.cached_normal.take() {
            return z;
        }
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (2.0 * std::f64::consts::PI * u2).sin_cos();
        self.cached_normal = Some(r * s);
        r * c
    }

    /// Normal deviate with mean `mu` and standard deviation `sigma`.
    #[inline]
    pub fn normal_ms(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.normal()
    }

    /// Log-normal deviate parameterized by the *median* `median` and the
    /// shape `sigma` (std-dev of the underlying normal). Heavy-tailed —
    /// used for OS daemon durations.
    #[inline]
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        debug_assert!(median > 0.0);
        median * (sigma * self.normal()).exp()
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forked_streams_are_independent_and_stable() {
        let root = Rng::new(7);
        let mut c1 = root.fork("noise", 0);
        let mut c2 = root.fork("noise", 1);
        let mut c3 = root.fork("freq", 0);
        let a: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| c3.next_u64()).collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stability: forking again yields the same stream.
        let mut c1bis = root.fork("noise", 0);
        let abis: Vec<u64> = (0..8).map(|_| c1bis.next_u64()).collect();
        assert_eq!(a, abis);
    }

    #[test]
    fn uniform_mean_and_bounds() {
        let mut r = Rng::new(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "uniform mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Rng::new(11);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[r.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn exponential_moments() {
        let mut r = Rng::new(5);
        let n = 50_000;
        let mean_target = 3.0;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.exp(mean_target);
            assert!(x >= 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - mean_target).abs() < 0.1, "exp mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(9);
        let n = 50_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "normal var {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut r = Rng::new(13);
        let mut xs: Vec<f64> = (0..10_001).map(|_| r.lognormal(50.0, 1.0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        assert!((med / 50.0 - 1.0).abs() < 0.15, "lognormal median {med}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }
}
