//! Model parameters of the simulator.
//!
//! Every quantitative knob of the simulation lives here, grouped by
//! subsystem, so experiments can state exactly which environment they model
//! and ablation studies can vary one group at a time. Defaults are
//! calibrated so that the EPCC and BabelStream reproductions land in the
//! same order of magnitude as the paper's Dardel/Vera measurements; see
//! `EXPERIMENTS.md` for the paper-vs-simulated comparison.

use crate::time::{Time, MS, US};
use ompvar_topology::MachineSpec;

/// CPU scheduler parameters (a deliberately coarse CFS-like model).
#[derive(Debug, Clone, PartialEq)]
pub struct SchedParams {
    /// Round-robin quantum when >1 user task shares a hardware thread.
    pub quantum: Time,
    /// Period of the load-balancing pass.
    pub balance_interval: Time,
    /// Probability that a balancing decision uses stale load information
    /// and moves a task onto a busy CPU anyway.
    pub balance_stale_prob: f64,
    /// Probability that the initial (unbound) placement of a thread ignores
    /// load and picks a uniformly random hardware thread.
    pub wake_misplace_prob: f64,
    /// Probability that an *unbound* thread woken at a synchronization
    /// point is re-placed by the scheduler's wake balancing instead of
    /// resuming where it last ran. This models the constant placement
    /// churn of unpinned OpenMP threads that sleep in barriers: threads
    /// drift away from their first-touch NUMA domain and occasionally
    /// stack on busy CPUs. Pinned threads never wake-migrate.
    pub wake_migrate_prob: f64,
    /// Cycles of cache-warmup penalty charged to a task after migrating
    /// within a NUMA domain; multiplied by the topology distance (1–3).
    pub migration_penalty_cycles: f64,
    /// Cycles of cache-refill penalty charged to a user task after a
    /// kernel (noise) task preempted it on its own CPU: the kernel work
    /// evicts part of the task's working set. The charge scales linearly
    /// with the preemptor's duration up to [`Self::refill_saturation_ns`]
    /// (a microseconds-long softirq barely touches the caches; a long
    /// daemon wipes them).
    pub preempt_refill_cycles: f64,
    /// Kernel-work duration at which the refill penalty saturates.
    pub refill_saturation_ns: f64,
    /// Timer tick period on busy CPUs (idle CPUs are tickless).
    pub tick_period: Time,
    /// CPU time consumed by one timer tick.
    pub tick_cost: Time,
}

impl Default for SchedParams {
    fn default() -> Self {
        SchedParams {
            quantum: 4 * MS,
            balance_interval: 25 * MS,
            balance_stale_prob: 0.10,
            wake_misplace_prob: 0.15,
            wake_migrate_prob: 0.01,
            migration_penalty_cycles: 80_000.0,
            preempt_refill_cycles: 120_000.0,
            refill_saturation_ns: 100_000.0,
            tick_period: 4 * MS,
            tick_cost: 2 * US,
        }
    }
}

/// Simultaneous-multithreading model.
#[derive(Debug, Clone, PartialEq)]
pub struct SmtParams {
    /// Per-hardware-thread compute throughput factor when the SMT sibling
    /// is simultaneously busy (1.0 = no slowdown, typical real value
    /// 0.55–0.7 for integer-heavy code).
    pub corun_factor: f64,
}

impl Default for SmtParams {
    fn default() -> Self {
        SmtParams { corun_factor: 0.62 }
    }
}

impl SmtParams {
    /// Throughput factor for a compute op of the given class when the SMT
    /// sibling is busy. Latency-bound code (dependency chains, like the
    /// EPCC `delay()` loop) shares a core almost for free; high-IPC code
    /// pays the full configured penalty.
    pub fn factor(&self, class: crate::task::CorunClass) -> f64 {
        use crate::task::CorunClass::*;
        match class {
            Latency => 0.96,
            Mixed => (self.corun_factor + 1.0) / 2.0,
            Throughput => self.corun_factor,
        }
    }
}

/// Costs of synchronization primitives, in nanoseconds at nominal
/// frequency. Contended costs grow linearly with the number of
/// simultaneous participants and with topology spread.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncCosts {
    /// Uncontended atomic read-modify-write on a shared line.
    pub atomic_ns: f64,
    /// Additional cost per concurrent contender on the same line.
    pub atomic_contention_ns: f64,
    /// Multiplier applied to contention costs when the participating
    /// threads span more than one socket.
    pub cross_socket_factor: f64,
    /// Fixed cost for a thread to signal arrival at a barrier.
    pub barrier_arrive_ns: f64,
    /// Additional arrival cost per team member (models the serialized
    /// cache-line RMW chain of a centralized barrier counter).
    pub barrier_arrive_per_thread_ns: f64,
    /// Dispatch cost per chunk of a `schedule(static)` loop (pure loop
    /// bookkeeping, no shared state).
    pub static_grab_ns: f64,
    /// Base cost for a waiter to observe the barrier release.
    pub barrier_release_ns: f64,
    /// Additional release-observation cost per unit of topology distance
    /// between the last arriver and the waiter.
    pub barrier_release_per_distance_ns: f64,
    /// Lock acquisition handoff (uncontended).
    pub lock_ns: f64,
    /// Cost for an ordered-section handoff between consecutive iterations.
    pub ordered_ns: f64,
    /// Per-thread cost of combining a reduction value into the shared
    /// accumulator (serialized, like libgomp's atomic/critical combine).
    pub reduction_combine_ns: f64,
    /// Cost of the single-construct "did somebody take it" check.
    pub single_ns: f64,
    /// Cost of creating one explicit task (allocation + enqueue).
    pub task_spawn_ns: f64,
    /// Cost of stealing one queued task at a scheduling point.
    pub task_dispatch_ns: f64,
}

impl Default for SyncCosts {
    fn default() -> Self {
        SyncCosts {
            atomic_ns: 55.0,
            atomic_contention_ns: 11.0,
            cross_socket_factor: 2.4,
            barrier_arrive_ns: 60.0,
            barrier_arrive_per_thread_ns: 25.0,
            static_grab_ns: 12.0,
            barrier_release_ns: 180.0,
            barrier_release_per_distance_ns: 140.0,
            lock_ns: 90.0,
            ordered_ns: 160.0,
            reduction_combine_ns: 120.0,
            single_ns: 70.0,
            task_spawn_ns: 180.0,
            task_dispatch_ns: 90.0,
        }
    }
}

/// One class of OS noise.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseSource {
    /// Human-readable name (appears in the report counters).
    pub name: &'static str,
    /// Mean inter-arrival time of one instance of this source. For
    /// [`NoisePlacement::PerCpu`], the rate applies *per CPU*.
    pub mean_interval: Time,
    /// Median busy duration of one arrival.
    pub median_duration: Time,
    /// Log-normal shape of the duration (0 = deterministic).
    pub duration_sigma: f64,
    /// How arrivals choose a CPU.
    pub placement: NoisePlacement,
}

/// CPU selection policy of a noise source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoisePlacement {
    /// One independent arrival process per hardware thread; work runs on
    /// that hardware thread (kworker / ksoftirqd style).
    PerCpu,
    /// Node-global process; each arrival runs on the least-loaded hardware
    /// thread (idle cores first, then idle SMT contexts, then busy CPUs) —
    /// the way the Linux scheduler places freshly woken daemons.
    LeastLoaded,
    /// Node-global process; each arrival runs on a uniformly random
    /// hardware thread (IRQ-style, cannot be absorbed by spare cores).
    RandomCpu,
}

/// OS noise configuration: a set of sources plus placement behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseParams {
    /// Active sources. Empty = perfectly quiet machine.
    pub sources: Vec<NoiseSource>,
    /// Probability that per-CPU kernel housekeeping destined for a busy
    /// CPU can run on an idle SMT sibling instead of preempting (softirq
    /// and unbound kworkers can; CPU-bound kernel threads cannot).
    pub sibling_absorb_prob: f64,
    /// Probability that a node-global daemon wakes *affine*: at its
    /// previous (uniformly random) CPU rather than through the global
    /// least-loaded path. An affine wake then searches the previous CPU's
    /// core and NUMA domain for an idle CPU (Linux `select_idle_sibling`)
    /// and only preempts when the local search fails and the escape roll
    /// below also fails.
    pub daemon_local_wake_prob: f64,
    /// When an affine wake finds no idle CPU in the local NUMA domain,
    /// probability that the scheduler's slow path still finds a remote
    /// idle CPU instead of preempting the previous CPU.
    pub cross_llc_escape_prob: f64,
}

impl Default for NoiseParams {
    fn default() -> Self {
        NoiseParams {
            sources: vec![],
            sibling_absorb_prob: 0.9,
            daemon_local_wake_prob: 0.25,
            cross_llc_escape_prob: 0.7,
        }
    }
}

impl NoiseParams {
    /// A perfectly quiet machine (no OS noise at all). Useful for tests
    /// and for isolating other variability mechanisms.
    pub fn quiet() -> Self {
        NoiseParams::default()
    }

    /// Noise resembling a production, site-managed HPC node without
    /// special noise isolation: per-CPU kernel housekeeping, node-global
    /// daemons that prefer idle CPUs, and rare long IRQ-ish bursts.
    pub fn production() -> Self {
        NoiseParams {
            sources: vec![
                NoiseSource {
                    name: "kworker",
                    mean_interval: 300 * MS,
                    median_duration: 8 * US,
                    duration_sigma: 0.8,
                    placement: NoisePlacement::PerCpu,
                },
                NoiseSource {
                    name: "daemon",
                    mean_interval: 15 * MS,
                    median_duration: 150 * US,
                    duration_sigma: 1.0,
                    placement: NoisePlacement::LeastLoaded,
                },
                NoiseSource {
                    name: "irq-burst",
                    mean_interval: 8_000 * MS,
                    median_duration: 2_500 * US,
                    duration_sigma: 0.9,
                    placement: NoisePlacement::RandomCpu,
                },
            ],
            ..Default::default()
        }
    }
}

/// DVFS / frequency-variation model.
#[derive(Debug, Clone, PartialEq)]
pub struct FreqParams {
    /// Governor reaction latency between an active-core-count change and
    /// the corresponding frequency retarget.
    pub reaction_latency: Time,
    /// Mean interval between stochastic boost/droop transitions of a
    /// socket whose sustainable frequency leaves headroom below max
    /// (few-core turbo instability). Set very large to disable.
    pub pulse_mean_interval: Time,
    /// Mean duration of one droop pulse.
    pub pulse_mean_duration: Time,
    /// Relative frequency drop of a droop pulse (e.g. 0.12 = −12%).
    pub pulse_depth: f64,
    /// Headroom threshold (GHz) between the sustainable bin and the
    /// all-core bin below which the socket is considered *stable* and
    /// pulses stop. Sockets running few cores (high bins) pulse; sockets
    /// running all cores (bottom bin) do not.
    pub stable_headroom_ghz: f64,
}

impl Default for FreqParams {
    fn default() -> Self {
        FreqParams {
            reaction_latency: 200 * US,
            pulse_mean_interval: 30 * MS,
            pulse_mean_duration: 4 * MS,
            pulse_depth: 0.12,
            stable_headroom_ghz: 0.15,
        }
    }
}

/// Memory-system model parameters (structure lives in
/// [`MachineSpec::memory`]; these are behavioural knobs).
#[derive(Debug, Clone, PartialEq)]
pub struct MemParams {
    /// Peak streaming bandwidth attainable by a single core, GB/s.
    pub per_core_bw_gbs: f64,
    /// Fraction of compute-op progress that still scales with frequency
    /// for memory-streaming ops (most of a stream op is DRAM-bound).
    pub stream_freq_sensitivity: f64,
}

impl Default for MemParams {
    fn default() -> Self {
        MemParams {
            per_core_bw_gbs: 13.0,
            stream_freq_sensitivity: 0.15,
        }
    }
}

/// Complete simulator parameter set.
#[derive(Debug, Clone, PartialEq)]
pub struct SimParams {
    /// Scheduler model.
    pub sched: SchedParams,
    /// SMT model.
    pub smt: SmtParams,
    /// Synchronization cost model.
    pub sync: SyncCosts,
    /// OS noise model.
    pub noise: NoiseParams,
    /// Frequency model.
    pub freq: FreqParams,
    /// Memory model.
    pub mem: MemParams,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            sched: SchedParams::default(),
            smt: SmtParams::default(),
            sync: SyncCosts::default(),
            noise: NoiseParams::production(),
            freq: FreqParams::default(),
            mem: MemParams::default(),
        }
    }
}

impl SimParams {
    /// Parameters resembling the machine's software environment in the
    /// study. Dardel (Cray) exhibits little frequency variation; Vera's
    /// Xeons pulse visibly in few-core turbo states.
    pub fn for_machine(machine: &MachineSpec) -> Self {
        let mut p = SimParams::default();
        match machine.name.as_str() {
            "dardel" => {
                // EPYC Zen2: flat, stable boost behaviour. The dispatch
                // contention coefficient is calibrated against Table 2:
                // dynamic_1 at 254 threads costs ~1.1 µs of dispatch per
                // iteration (154.1 ms total per repetition).
                p.freq.pulse_mean_interval = 400 * MS;
                p.freq.pulse_depth = 0.04;
                p.freq.stable_headroom_ghz = 0.3;
                p.sync.atomic_ns = 45.0;
                p.sync.atomic_contention_ns = 1.7;
            }
            "vera" => {
                // Skylake-SP: deep turbo bins. Most of Vera's frequency
                // variability comes from *turbo-bin flips* when OS noise
                // wakes idle cores of a partially busy socket (3.4 ↔ 3.1
                // GHz at the 8/9-active edge); the stochastic droop
                // pulses on top are mild. Contention calibrated against
                // Table 2's Vera column: ~0.28 µs dispatch per iteration
                // at 30 threads.
                p.freq.pulse_mean_interval = 45 * MS;
                p.freq.pulse_mean_duration = 3 * MS;
                p.freq.pulse_depth = 0.06;
                p.freq.stable_headroom_ghz = 0.15;
                p.sync.atomic_ns = 60.0;
                p.sync.atomic_contention_ns = 3.2;
                p.mem.per_core_bw_gbs = 14.0;
            }
            _ => {}
        }
        p
    }

    /// A noiseless, pulse-free parameter set — useful to verify that all
    /// variability vanishes when its modeled causes are removed.
    #[allow(clippy::field_reassign_with_default)]
    pub fn sterile() -> Self {
        let mut p = SimParams::default();
        p.noise = NoiseParams::quiet();
        p.freq.pulse_mean_interval = Time::MAX / 4;
        p.sched.wake_misplace_prob = 0.0;
        p.sched.balance_stale_prob = 0.0;
        p.sched.wake_migrate_prob = 0.0;
        // The periodic timer tick is OS noise too.
        p.sched.tick_cost = 0;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = SimParams::default();
        assert!(p.smt.corun_factor > 0.0 && p.smt.corun_factor <= 1.0);
        assert!(p.sched.quantum > 0);
        assert!(!p.noise.sources.is_empty());
    }

    #[test]
    fn machine_presets_differ() {
        let d = SimParams::for_machine(&MachineSpec::dardel());
        let v = SimParams::for_machine(&MachineSpec::vera());
        assert!(d.freq.pulse_mean_interval > v.freq.pulse_mean_interval);
        assert!(d.freq.pulse_depth < v.freq.pulse_depth);
    }

    #[test]
    fn sterile_removes_all_noise() {
        let p = SimParams::sterile();
        assert!(p.noise.sources.is_empty());
        assert_eq!(p.sched.wake_misplace_prob, 0.0);
    }
}
