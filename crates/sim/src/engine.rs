//! The discrete-event simulation engine.
//!
//! The engine owns the machine state (per-hardware-thread run queues, per
//! socket DVFS state, per-NUMA-domain memory contention), the task table
//! and the sync-object table, and processes events in virtual-time order.
//!
//! # Execution model
//!
//! Every hardware thread (CPU) runs at most one task at a time. Kernel
//! (noise) tasks preempt user tasks immediately and run to completion,
//! FIFO. Multiple user tasks on one CPU share it in round-robin quanta —
//! this is how an oversubscribed, unpinned run degrades. Tasks waiting on
//! sync objects *spin*: they keep occupying their CPU (slowing an SMT
//! sibling, keeping the core "active" for DVFS) but make no progress, like
//! an OpenMP runtime with an active wait policy.
//!
//! Work in progress is repriced whenever its rate changes (frequency
//! retarget, SMT sibling state change, memory-bandwidth contention
//! change, preemption): the engine accounts the elapsed progress, bumps
//! the CPU's event token to invalidate the stale boundary event, and
//! schedules a fresh one.

use crate::error::{BlockedOn, BlockedTask, SimError};
use crate::events::{EventKind, EventQueue};
use crate::fault::{Fault, FaultEvent, FaultPlan};
use crate::params::{NoisePlacement, SimParams};
use crate::rng::Rng;
use crate::sync::{AtomicObj, BarrierObj, LockObj, LoopObj, LoopSpec, SingleObj, SyncObj, TaskPoolObj};
use crate::task::{
    CorunClass, MicroOp, ObjId, Op, Program, Task, TaskId, TaskKind, TaskState, Timed, WaitKind,
};
use crate::time::{from_ns_f64, Time};
use crate::trace::{Counters, FreqSample, MarkerRecord, ObjEffects, SimReport};
use ompvar_obs::EventKind as TraceKind;
use ompvar_obs::{
    AttrSample, AttrSource, InstantKind, RunAttribution, SpanKind, ThreadAttribution, Trace,
    TraceEvent, CORE_UNKNOWN, N_SOURCES, THREAD_GLOBAL,
};
use ompvar_topology::{CoreId, HwThreadId, MachineSpec, Place};
use std::collections::VecDeque;

/// Per-hardware-thread scheduler state.
#[derive(Debug)]
struct Cpu {
    /// Task currently on the CPU (running or spin-waiting).
    running: Option<TaskId>,
    /// Kernel tasks awaiting the CPU (FIFO, run before any user task).
    kq: VecDeque<TaskId>,
    /// User tasks awaiting the CPU (round-robin).
    uq: VecDeque<TaskId>,
    /// Generation token invalidating scheduled boundary events.
    token: u64,
    /// Generation token invalidating scheduled timer ticks.
    tick_token: u64,
    /// End of the current user quantum.
    quantum_end: Time,
    /// Last time the running task's progress was accounted.
    since: Time,
    /// NUMA domain this CPU is currently streaming against (cache of
    /// membership in `DomainState::streamers`).
    streaming: Option<usize>,
    /// Taken down by a hotplug fault: accepts no new work.
    offline: bool,
}

impl Cpu {
    fn new() -> Self {
        Cpu {
            running: None,
            kq: VecDeque::new(),
            uq: VecDeque::new(),
            token: 0,
            tick_token: 0,
            quantum_end: 0,
            since: 0,
            streaming: None,
            offline: false,
        }
    }

    fn load(&self) -> usize {
        self.kq.len() + self.uq.len() + usize::from(self.running.is_some())
    }
}

/// Per-socket DVFS state.
#[derive(Debug)]
struct Socket {
    /// Cores of this socket with at least one busy hardware thread.
    active_cores: usize,
    /// Frequency currently applied to the socket's busy cores (GHz).
    applied_ghz: f64,
    /// The *clean* frequency trajectory: what `applied_ghz` would be with
    /// no droop pulses and no fault caps — the sustainable turbo bin for
    /// the current activity level, updated with the same governor lag as
    /// the applied frequency. Read only by the attribution ledger (the
    /// reference against which [`AttrSource::SubNominalFreq`] time is
    /// measured); never feeds back into timing.
    clean_ghz: f64,
    /// Whether a droop pulse is currently in effect.
    pulse_active: bool,
    /// Token invalidating scheduled pulse events.
    pulse_token: u64,
    /// Whether a pulse chain is currently scheduled.
    pulse_armed: bool,
    /// Thermal-capping fault: ceiling on the applied frequency, if any.
    cap_ghz: Option<f64>,
    /// Dedicated random stream for this socket's pulse process.
    rng: Rng,
}

/// Per-NUMA-domain memory state.
#[derive(Debug, Default)]
struct Domain {
    /// CPUs currently running a memory-stream micro-op whose data lives
    /// in this domain.
    streamers: Vec<usize>,
}

/// One arrival process of a noise source.
#[derive(Debug)]
struct NoiseStream {
    /// Index into `params.noise.sources`.
    source: usize,
    /// Fixed CPU for per-CPU sources.
    cpu: Option<usize>,
    /// Dedicated random stream.
    rng: Rng,
}

/// Per-task causal-attribution state (user tasks only; kernel/noise
/// tasks *are* the noise and get no ledger).
#[derive(Debug, Default)]
struct TaskAttr {
    /// Wall nanoseconds charged to each [`AttrSource`], ledger order.
    ledger: [f64; N_SOURCES],
    /// Wall nanoseconds of useful program progress.
    useful: f64,
    /// Typed FIFO mirroring `Task::pending_overhead_ns`: each entry is
    /// `(max-frequency ns, AttrSource index)`, pushed when the pot is
    /// charged and drained in lockstep as `touch()` consumes the pot.
    fifo: VecDeque<(f64, u8)>,
    /// Wall ns of the current spin-wait episode (accrued by `touch()`).
    wait_acc: f64,
    /// `AttrState::noise_cum` at the start of the current wait episode.
    noise_snap: f64,
    /// When displaced off its CPU into a run queue: queue-entry time.
    queued_from: Option<Time>,
}

/// Ledger state for one attributed run; `Some` iff attribution is on.
///
/// Attribution is observation-only: it draws no randomness, pushes no
/// events, and mutates no engine state, so attributed and plain runs are
/// virtual-time bit-identical (golden-suite + oracle #12 enforced).
#[derive(Debug, Default)]
struct AttrState {
    /// Indexed by `TaskId`; sized to the pre-run task table, so kernel
    /// tasks spawned later fall off the end and are ignored.
    per_task: Vec<TaskAttr>,
    /// Cumulative *primary* noise wall-ns charged to user tasks
    /// (preemption, migration, SMT, sub-nominal frequency, ticks,
    /// stalls — not the derived `NoiseDelayedArrival`). Wait episodes
    /// snapshot this to decide how much of a wait noise can explain.
    noise_cum: f64,
    /// Running per-source totals across all threads (feeds `samples`).
    totals: [f64; N_SOURCES],
    /// Cumulative per-source samples, coalesced per virtual time.
    samples: Vec<AttrSample>,
}

impl AttrState {
    fn push_sample(&mut self, now: Time) {
        match self.samples.last_mut() {
            Some(s) if s.time_ns == now => s.total_by_source = self.totals,
            _ => self.samples.push(AttrSample { time_ns: now, total_by_source: self.totals }),
        }
    }
}

/// Frequency-logger configuration.
#[derive(Debug, Clone, Copy)]
struct LoggerCfg {
    /// CPU that hosts the logger process (its sampling cost runs there);
    /// `None` = a free-floating observer without CPU cost.
    cpu: Option<usize>,
    /// Sampling period.
    period: Time,
    /// CPU time consumed per sample.
    cost: Time,
}

/// The simulator.
pub struct Simulator {
    machine: MachineSpec,
    params: SimParams,
    now: Time,
    queue: EventQueue,
    tasks: Vec<Task>,
    objs: Vec<SyncObj>,
    cpus: Vec<Cpu>,
    sockets: Vec<Socket>,
    domains: Vec<Domain>,
    /// Busy hardware-thread count per physical core.
    core_busy: Vec<u8>,
    noise_streams: Vec<NoiseStream>,
    kernel_freelist: Vec<TaskId>,
    rng_place: Rng,
    rng_balance: Rng,
    logger: Option<LoggerCfg>,
    users_remaining: usize,
    user_tasks: Vec<TaskId>,
    markers: Vec<MarkerRecord>,
    freq_samples: Vec<FreqSample>,
    counters: Counters,
    started: bool,
    /// First unrecoverable error raised inside an event handler; checked
    /// after every event so `run` can return it without threading
    /// `Result` through the whole interpreter.
    fatal: Option<SimError>,
    /// Scheduled fault injections (see [`FaultPlan`]).
    fault_plan: Vec<FaultEvent>,
    /// One dedicated random stream per fault event.
    fault_rngs: Vec<Rng>,
    /// Parent stream the per-fault streams fork from.
    rng_fault: Rng,
    /// Pending lost-wakeup count: `wake()` swallows this many wakeups.
    lost_wakeups_armed: u32,
    /// Optional hard cap on processed events.
    event_budget: Option<u64>,
    /// Span/instant event buffer; `Some` iff tracing is enabled. Virtual
    /// time is unaffected by tracing: recording costs nothing in-model.
    trace: Option<Vec<TraceEvent>>,
    /// Causal time-attribution ledger; `Some` iff attribution is enabled.
    /// Like tracing, strictly observational: virtual time is bit-identical
    /// with attribution on or off.
    attr: Option<AttrState>,
    /// Reference-engine mode: run on the pre-optimization event queue
    /// (plain `BinaryHeap`) and recompute every topology lookup through
    /// `MachineSpec` instead of the flat caches, with no tick
    /// fast-forwarding. The observable event stream is identical to the
    /// optimized path by construction; this mode exists as the yardstick
    /// for equivalence oracles, cross-implementation golden checks, and
    /// machine-independent CI perf normalization.
    reference: bool,
    /// Physical core of each hardware thread (flat topology cache).
    cpu_core: Vec<u32>,
    /// Socket of each hardware thread.
    cpu_socket: Vec<u32>,
    /// NUMA domain of each hardware thread.
    cpu_numa: Vec<u32>,
    /// Socket of each physical core.
    core_socket: Vec<u32>,
    /// Hardware threads of each socket, ascending.
    socket_cpus: Vec<Vec<usize>>,
    /// `machine.n_cores()`, copied out of the spec for the regular-layout
    /// sibling formula `hw = core + smt_lane * n_cores`.
    n_cores: usize,
    /// `machine.smt` (SMT ways per core).
    smt: usize,
    /// Scratch buffer reused by per-event CPU collections (bandwidth
    /// repricing, frequency re-evaluation, fault storms). Take/put-back
    /// discipline: `std::mem::take` it, use it, clear and restore it, so
    /// accidental re-entry degrades to a fresh allocation rather than
    /// corruption.
    scratch_cpus: Vec<usize>,
}

impl Simulator {
    /// Create a simulator for `machine` with model parameters `params`,
    /// fully determined by `seed`.
    pub fn new(machine: MachineSpec, params: SimParams, seed: u64) -> Self {
        let root = Rng::new(seed);
        let n_cpu = machine.n_hw_threads();
        let sockets = (0..machine.sockets)
            .map(|s| Socket {
                active_cores: 0,
                applied_ghz: machine.clock.max_ghz,
                clean_ghz: machine.clock.max_ghz,
                pulse_active: false,
                pulse_token: 0,
                pulse_armed: false,
                cap_ghz: None,
                rng: root.fork("socket-freq", s as u64),
            })
            .collect();
        let mut noise_streams = Vec::new();
        for (si, src) in params.noise.sources.iter().enumerate() {
            match src.placement {
                NoisePlacement::PerCpu => {
                    for c in 0..n_cpu {
                        noise_streams.push(NoiseStream {
                            source: si,
                            cpu: Some(c),
                            rng: root.fork("noise", (si * n_cpu + c) as u64),
                        });
                    }
                }
                NoisePlacement::LeastLoaded | NoisePlacement::RandomCpu => {
                    noise_streams.push(NoiseStream {
                        source: si,
                        cpu: None,
                        rng: root.fork("noise-global", si as u64),
                    });
                }
            }
        }
        // Flat topology caches. The spec's layout is regular (see
        // `MachineSpec`), so these hold exactly the values the
        // `machine.*_of` lookups compute; the reference engine recomputes
        // them through the spec on every use as a cross-check.
        let cpu_core: Vec<u32> = (0..n_cpu)
            .map(|h| machine.core_of(HwThreadId(h)).0 as u32)
            .collect();
        let cpu_socket: Vec<u32> = (0..n_cpu)
            .map(|h| machine.socket_of(HwThreadId(h)).0 as u32)
            .collect();
        let cpu_numa: Vec<u32> = (0..n_cpu)
            .map(|h| machine.numa_of(HwThreadId(h)).0 as u32)
            .collect();
        let core_socket: Vec<u32> = (0..machine.n_cores())
            .map(|c| machine.socket_of_numa(machine.numa_of_core(CoreId(c))).0 as u32)
            .collect();
        let mut socket_cpus: Vec<Vec<usize>> = vec![Vec::new(); machine.sockets];
        for h in 0..n_cpu {
            socket_cpus[cpu_socket[h] as usize].push(h);
        }
        Simulator {
            reference: false,
            cpu_core,
            cpu_socket,
            cpu_numa,
            core_socket,
            socket_cpus,
            n_cores: machine.n_cores(),
            smt: machine.smt,
            scratch_cpus: Vec::new(),
            cpus: (0..n_cpu).map(|_| Cpu::new()).collect(),
            sockets,
            domains: (0..machine.n_numa()).map(|_| Domain::default()).collect(),
            core_busy: vec![0; machine.n_cores()],
            noise_streams,
            kernel_freelist: Vec::new(),
            rng_place: root.fork("place", 0),
            rng_balance: root.fork("balance", 0),
            logger: None,
            users_remaining: 0,
            user_tasks: Vec::new(),
            markers: Vec::new(),
            freq_samples: Vec::new(),
            counters: Counters::default(),
            started: false,
            fatal: None,
            fault_plan: Vec::new(),
            fault_rngs: Vec::new(),
            rng_fault: root.fork("fault", 0),
            lost_wakeups_armed: 0,
            event_budget: None,
            trace: None,
            attr: None,
            machine,
            params,
            now: 0,
            queue: EventQueue::new(),
            tasks: Vec::new(),
            objs: Vec::new(),
        }
    }

    /// The machine being simulated.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// The model parameters in effect.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    // ------------------------------------------------------------------
    // Construction API
    // ------------------------------------------------------------------

    /// Register a barrier for a team of `n`; `span_factor` scales its
    /// contention costs with the team's topology spread.
    pub fn add_barrier(&mut self, n: usize, span_factor: f64) -> ObjId {
        self.push_obj(SyncObj::Barrier(BarrierObj::new(n, span_factor)))
    }

    /// Register a lock.
    pub fn add_lock(&mut self, span_factor: f64) -> ObjId {
        self.push_obj(SyncObj::Lock(LockObj::new(span_factor)))
    }

    /// Register a contended-atomic object.
    pub fn add_atomic(&mut self, span_factor: f64) -> ObjId {
        self.push_obj(SyncObj::Atomic(AtomicObj::new(span_factor)))
    }

    /// Register a `single` tracker for a team of `n`.
    pub fn add_single(&mut self, n: usize) -> ObjId {
        self.push_obj(SyncObj::Single(SingleObj::new(n)))
    }

    /// Register a work-shared loop.
    pub fn add_loop(&mut self, spec: LoopSpec) -> ObjId {
        self.push_obj(SyncObj::Loop(LoopObj::new(spec)))
    }

    /// Register an explicit-task pool for a team of `participants` with
    /// `spawners` concurrent producers.
    pub fn add_task_pool(
        &mut self,
        span_factor: f64,
        participants: usize,
        spawners: usize,
    ) -> ObjId {
        self.push_obj(SyncObj::TaskPool(TaskPoolObj::new(
            span_factor,
            participants,
            spawners,
        )))
    }

    fn push_obj(&mut self, obj: SyncObj) -> ObjId {
        assert!(!self.started, "objects must be registered before run()");
        let id = ObjId(self.objs.len() as u32);
        self.objs.push(obj);
        id
    }

    /// Spawn a user task with team `rank`, executing `program`, pinned to
    /// `pin` (or unbound when `None`). All user tasks start at time 0.
    pub fn spawn_user(&mut self, rank: usize, program: Program, pin: Option<Place>) -> TaskId {
        assert!(!self.started, "tasks must be spawned before run()");
        if let Some(p) = &pin {
            for &h in p.hw_threads() {
                assert!(h.0 < self.cpus.len(), "pin beyond machine size");
            }
        }
        let id = TaskId(self.tasks.len() as u32);
        self.tasks
            .push(Task::new(id, TaskKind::User, rank, program, pin));
        self.users_remaining += 1;
        self.user_tasks.push(id);
        id
    }

    /// Enable the frequency logger: samples every `period`, optionally
    /// consuming `cost` CPU time on `cpu` per sample (mirroring the
    /// paper's Python logger on a spare core).
    pub fn enable_freq_logger(&mut self, cpu: Option<usize>, period: Time, cost: Time) {
        assert!(period > 0);
        self.logger = Some(LoggerCfg { cpu, period, cost });
    }

    /// Attach a fault plan. Each fault draws its randomness from a
    /// dedicated sub-stream of the simulation seed, so the injection
    /// schedule is bit-identical per seed and attaching a plan does not
    /// perturb any other model stream.
    pub fn inject_faults(&mut self, plan: &FaultPlan) {
        assert!(!self.started, "faults must be injected before run()");
        self.fault_plan = plan.events.clone();
        self.fault_rngs = (0..self.fault_plan.len())
            .map(|i| self.rng_fault.fork("fault-evt", i as u64))
            .collect();
    }

    /// Abort the run with [`SimError::EventBudgetExceeded`] once more
    /// than `budget` events have been processed — a backstop against
    /// runaway event chains.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = Some(budget);
    }

    /// Run on the reference engine: the pre-optimization `BinaryHeap`
    /// event queue, naive per-use topology lookups through the
    /// [`MachineSpec`], and no idle-period tick fast-forwarding.
    ///
    /// The reference path processes the *identical* event stream — same
    /// pop order, same RNG draws, same counters — so a seed run on either
    /// path yields a bit-identical [`SimReport`]. It exists as the
    /// yardstick: equivalence oracles diff the two paths, the golden
    /// determinism suite pins both to one digest, and the CI perf gate
    /// divides optimized throughput by reference throughput to get a
    /// machine-independent speedup.
    pub fn use_reference_engine(&mut self) {
        assert!(
            !self.started,
            "engine flavor must be chosen before run()"
        );
        self.reference = true;
        self.queue = EventQueue::new_reference();
    }

    /// Is this simulator on the reference (pre-optimization) path?
    pub fn is_reference_engine(&self) -> bool {
        self.reference
    }

    /// Turn on span/instant tracing. Tracing records construct timelines
    /// (region, barrier, workshare, …) into the report's [`Trace`] without
    /// perturbing virtual time: traced and untraced runs of the same seed
    /// produce identical timing.
    pub fn enable_tracing(&mut self) {
        assert!(!self.started, "tracing must be enabled before run()");
        self.trace = Some(Vec::new());
    }

    /// Record a span begin/end for `tid` at the current virtual time,
    /// stamped with the task's team rank and current CPU.
    #[inline]
    fn trace_task(&mut self, tid: TaskId, kind: TraceKind) {
        if self.trace.is_none() {
            return;
        }
        let t = &self.tasks[tid.0 as usize];
        let ev = TraceEvent {
            time_ns: self.now,
            thread: t.rank as u32,
            core: t.cpu as u32,
            kind,
        };
        if let Some(buf) = &mut self.trace {
            buf.push(ev);
        }
    }

    /// Record a runtime-wide instant event (fault, retarget) not tied to
    /// any team thread.
    #[inline]
    fn trace_global(&mut self, kind: InstantKind, core: u32) {
        if let Some(buf) = &mut self.trace {
            buf.push(TraceEvent {
                time_ns: self.now,
                thread: THREAD_GLOBAL,
                core,
                kind: TraceKind::Instant(kind),
            });
        }
    }

    // ------------------------------------------------------------------
    // Causal time attribution
    //
    // Every helper below is a no-op when `self.attr` is `None`, draws no
    // randomness, pushes no events, and never mutates engine state, so an
    // attributed run is virtual-time bit-identical to a plain run. Wall
    // time of each user thread decomposes as
    //
    //     wall = useful + Σ ledger[src]      (conservation, oracle #12)
    //
    // with four charge channels:
    //  * busy progress time, split by `attr_busy` into useful compute vs.
    //    SMT co-run, sub-nominal frequency and memory contention;
    //  * overhead-pot drain (`attr_drain_pot`): the typed FIFO mirrors
    //    `pending_overhead_ns`, so each drained nanosecond keeps the
    //    cause it was charged with (`attr_pot`);
    //  * descheduled time (`queued_from` → Preemption) while the task
    //    sits in a run queue or is displaced by a kernel task;
    //  * spin-wait episodes, accrued in `touch()` and classified at the
    //    closing wake (`attr_flush_wait`) into NoiseDelayedArrival (the
    //    part explainable by primary noise charged elsewhere during the
    //    episode) vs. plain SyncContention.
    // ------------------------------------------------------------------

    /// Turn on the causal attribution ledger. Like tracing, must be
    /// enabled before `run()` and does not perturb virtual time.
    pub fn enable_attribution(&mut self) {
        assert!(!self.started, "attribution must be enabled before run()");
        self.attr = Some(AttrState::default());
    }

    /// Is the attribution ledger active?
    pub fn attribution_enabled(&self) -> bool {
        self.attr.is_some()
    }

    /// Charge `wall_ns` of wall time on user task `tid` to `src`.
    /// Kernel tasks (ids beyond the pre-run table) are ignored.
    #[inline]
    fn attr_charge(&mut self, tid: TaskId, wall_ns: f64, src: AttrSource) {
        if wall_ns <= 0.0 {
            return;
        }
        let now = self.now;
        let Some(a) = &mut self.attr else { return };
        let Some(pt) = a.per_task.get_mut(tid.0 as usize) else { return };
        pt.ledger[src.index()] += wall_ns;
        a.totals[src.index()] += wall_ns;
        if src.is_noise() {
            a.noise_cum += wall_ns;
        }
        a.push_sample(now);
    }

    /// Mirror a `pending_overhead_ns += nominal_ns` charge with its
    /// cause; the FIFO is drained in lockstep as `touch()` consumes the
    /// pot, so the eventual wall time keeps this source.
    #[inline]
    fn attr_pot(&mut self, tid: TaskId, nominal_ns: f64, src: AttrSource) {
        if nominal_ns <= 0.0 {
            return;
        }
        let Some(a) = &mut self.attr else { return };
        let Some(pt) = a.per_task.get_mut(tid.0 as usize) else { return };
        pt.fifo.push_back((nominal_ns, src.index() as u8));
    }

    /// Book the wall time of a pot drain: `used_nominal` max-frequency
    /// nanoseconds were consumed at clock ratio `nrate`. FIFO entries are
    /// popped/split to cover it; if the FIFO runs dry (a pot charge the
    /// ledger missed) the remainder is booked as RuntimeOverhead so the
    /// drain is always fully accounted. When `flush_rest` (pot reached
    /// zero), leftover FIFO entries are dropped uncharged — the engine
    /// zero-clamps sub-nanosecond residue the same way.
    fn attr_drain_pot(&mut self, tid: TaskId, used_nominal: f64, nrate: f64, flush_rest: bool) {
        if used_nominal <= 0.0 || self.attr.is_none() {
            return;
        }
        let now = self.now;
        let Some(a) = &mut self.attr else { return };
        let Some(pt) = a.per_task.get_mut(tid.0 as usize) else { return };
        let mut left = used_nominal;
        let mut charged = [0.0f64; N_SOURCES];
        while left > 1e-12 {
            let Some((amt, src)) = pt.fifo.front_mut() else {
                charged[AttrSource::RuntimeOverhead.index()] += left / nrate;
                left = 0.0;
                break;
            };
            let take = amt.min(left);
            *amt -= take;
            left -= take;
            charged[*src as usize] += take / nrate;
            if *amt <= 1e-12 {
                pt.fifo.pop_front();
            }
        }
        let _ = left;
        if flush_rest {
            pt.fifo.clear();
        }
        let mut any = false;
        for (i, &w) in charged.iter().enumerate() {
            if w > 0.0 {
                pt.ledger[i] += w;
                a.totals[i] += w;
                if AttrSource::ALL[i].is_noise() {
                    a.noise_cum += w;
                }
                any = true;
            }
        }
        if any {
            a.push_sample(now);
        }
    }

    /// Accrue `wall_ns` of spin-wait time into the open wait episode.
    #[inline]
    fn attr_wait_accrue(&mut self, tid: TaskId, wall_ns: f64) {
        if wall_ns <= 0.0 {
            return;
        }
        let Some(a) = &mut self.attr else { return };
        let Some(pt) = a.per_task.get_mut(tid.0 as usize) else { return };
        pt.wait_acc += wall_ns;
    }

    /// Close the current wait episode of `tid` (if any): the part that
    /// primary noise charged *during the episode* can explain is booked
    /// as NoiseDelayedArrival (the waiter was stuck behind a noise-hit
    /// peer); the remainder is plain SyncContention. Also re-snapshots
    /// `noise_cum` so the next episode starts fresh. Called when a task
    /// blocks (to open a clean snapshot) and when its wake completes.
    fn attr_flush_wait(&mut self, tid: TaskId) {
        let now = self.now;
        let Some(a) = &mut self.attr else { return };
        let noise_cum = a.noise_cum;
        let Some(pt) = a.per_task.get_mut(tid.0 as usize) else { return };
        let wait = pt.wait_acc;
        pt.wait_acc = 0.0;
        let noise_part = wait.min((noise_cum - pt.noise_snap).max(0.0));
        pt.noise_snap = noise_cum;
        if wait <= 0.0 {
            return;
        }
        let sync_part = wait - noise_part;
        pt.ledger[AttrSource::NoiseDelayedArrival.index()] += noise_part;
        pt.ledger[AttrSource::SyncContention.index()] += sync_part;
        a.totals[AttrSource::NoiseDelayedArrival.index()] += noise_part;
        a.totals[AttrSource::SyncContention.index()] += sync_part;
        a.push_sample(now);
    }

    /// Mark `tid` as displaced into a run queue at the current time (the
    /// start of a descheduled interval; no-op if already marked).
    #[inline]
    fn attr_set_queued(&mut self, tid: TaskId) {
        let now = self.now;
        let Some(a) = &mut self.attr else { return };
        let Some(pt) = a.per_task.get_mut(tid.0 as usize) else { return };
        if pt.queued_from.is_none() {
            pt.queued_from = Some(now);
        }
    }

    /// Close a descheduled interval for `tid`: charge queue residence to
    /// Preemption (displacement by kernel noise or quantum rotation is
    /// what puts user tasks in queues).
    #[inline]
    fn attr_take_queued(&mut self, tid: TaskId) {
        let now = self.now;
        let queued = {
            let Some(a) = &mut self.attr else { return };
            let Some(pt) = a.per_task.get_mut(tid.0 as usize) else { return };
            pt.queued_from.take()
        };
        if let Some(from) = queued {
            self.attr_charge(tid, now.saturating_sub(from) as f64, AttrSource::Preemption);
        }
    }

    /// Decompose `wall_ns` of busy progress on the installed micro-op
    /// into useful compute vs. SMT co-run slowdown, sub-nominal-frequency
    /// stretch (measured against the clean per-socket trajectory) and
    /// memory-bandwidth contention, and book each part. The split is the
    /// exact algebra of `rate()`: work done in `wall_ns` at the actual
    /// rate would have taken proportionally less wall time at the clean
    /// reference rate, and the difference is charged to each mechanism.
    fn attr_busy(
        &mut self,
        tid: TaskId,
        cpu: usize,
        wall_ns: f64,
        timed: &Timed,
        home_numa: Option<usize>,
    ) {
        if wall_ns <= 0.0 || self.attr.is_none() {
            return;
        }
        let ghz = self.ghz(cpu);
        let max = self.machine.clock.max_ghz;
        let clean = self.sockets[self.socket_of_cpu(cpu)].clean_ghz;
        let mut smt_part = 0.0;
        let mut mem_part = 0.0;
        let freq_part;
        match timed {
            Timed::Cycles { class, .. } => {
                let s = if self.sibling_busy(cpu) {
                    self.params.smt.factor(*class)
                } else {
                    1.0
                };
                smt_part = wall_ns * (1.0 - s);
                freq_part = (wall_ns * s * (1.0 - ghz / clean)).max(0.0);
            }
            Timed::Ns { .. } | Timed::AtomicNs { .. } => {
                freq_part = (wall_ns * (1.0 - ghz / clean)).max(0.0);
            }
            Timed::Bytes { .. } => {
                let home = home_numa.unwrap_or_else(|| self.numa_of_cpu(cpu));
                let n_acc = self.domains[home].streamers.len().max(1);
                let mem = &self.machine.memory;
                let remote = if self.numa_of_cpu(cpu) != home {
                    mem.remote_bw_factor
                } else {
                    1.0
                };
                let per_core = self.params.mem.per_core_bw_gbs;
                let b = (mem.local_bw_gbs / n_acc as f64).min(per_core) * remote;
                let b0 = mem.local_bw_gbs.min(per_core) * remote;
                let s = self.params.mem.stream_freq_sensitivity;
                let f = (1.0 - s) + s * ghz / max;
                let f0 = (1.0 - s) + s * clean / max;
                let bw_ratio = if b0 > 0.0 { b / b0 } else { 1.0 };
                mem_part = wall_ns * (1.0 - bw_ratio);
                freq_part = if f0 > 0.0 {
                    (wall_ns * bw_ratio * (1.0 - f / f0)).max(0.0)
                } else {
                    0.0
                };
            }
        }
        let useful = (wall_ns - smt_part - freq_part - mem_part).max(0.0);
        let now = self.now;
        let Some(a) = &mut self.attr else { return };
        let Some(pt) = a.per_task.get_mut(tid.0 as usize) else { return };
        let mut any = false;
        for (i, part) in [
            (AttrSource::SmtCoRun.index(), smt_part),
            (AttrSource::SubNominalFreq.index(), freq_part),
            (AttrSource::MemContention.index(), mem_part),
        ] {
            if part > 0.0 {
                pt.ledger[i] += part;
                a.totals[i] += part;
                if AttrSource::ALL[i].is_noise() {
                    a.noise_cum += part;
                }
                any = true;
            }
        }
        pt.useful += useful;
        if any {
            a.push_sample(now);
        }
    }

    // ------------------------------------------------------------------
    // Rates and pricing
    // ------------------------------------------------------------------

    fn socket_of_cpu(&self, cpu: usize) -> usize {
        if self.reference {
            self.machine.socket_of(HwThreadId(cpu)).0
        } else {
            self.cpu_socket[cpu] as usize
        }
    }

    fn numa_of_cpu(&self, cpu: usize) -> usize {
        if self.reference {
            self.machine.numa_of(HwThreadId(cpu)).0
        } else {
            self.cpu_numa[cpu] as usize
        }
    }

    fn core_of_cpu(&self, cpu: usize) -> usize {
        if self.reference {
            self.machine.core_of(HwThreadId(cpu)).0
        } else {
            self.cpu_core[cpu] as usize
        }
    }

    fn ghz(&self, cpu: usize) -> f64 {
        self.sockets[self.socket_of_cpu(cpu)].applied_ghz
    }

    fn sibling_busy(&self, cpu: usize) -> bool {
        if self.reference {
            return self
                .machine
                .siblings_of(HwThreadId(cpu))
                .iter()
                .any(|s| self.cpus[s.0].running.is_some());
        }
        // `core_busy` counts hardware threads of the core with a task
        // installed (maintained solely by `set_running`), so the sibling
        // scan collapses to one counter read: subtract this thread's own
        // contribution and ask whether anything is left.
        let mut n = self.core_busy[self.cpu_core[cpu] as usize];
        if self.cpus[cpu].running.is_some() {
            n -= 1;
        }
        n > 0
    }

    /// Progress rate of the given timed micro-op on `cpu`, in
    /// progress-units per nanosecond.
    fn rate(&self, cpu: usize, timed: &Timed, home_numa: Option<usize>) -> f64 {
        match timed {
            Timed::Cycles { class, .. } => {
                let mut ghz = self.ghz(cpu);
                if self.sibling_busy(cpu) {
                    ghz *= self.params.smt.factor(*class);
                }
                ghz // cycles per ns
            }
            // Fixed-duration work is specified in "nanoseconds at maximum
            // frequency": synchronization costs (cache-line transfers,
            // spin handoffs) and kernel work all run at core clock and
            // stretch when the core droops.
            Timed::Ns { .. } | Timed::AtomicNs { .. } => {
                self.ghz(cpu) / self.machine.clock.max_ghz
            }
            Timed::Bytes { .. } => {
                let home = home_numa.unwrap_or_else(|| self.numa_of_cpu(cpu));
                let n_acc = self.domains[home].streamers.len().max(1);
                let mem = &self.machine.memory;
                let share = mem.local_bw_gbs / n_acc as f64;
                let mut gbs = share.min(self.params.mem.per_core_bw_gbs);
                if self.numa_of_cpu(cpu) != home {
                    gbs *= mem.remote_bw_factor;
                }
                let s = self.params.mem.stream_freq_sensitivity;
                gbs *= (1.0 - s) + s * self.ghz(cpu) / self.machine.clock.max_ghz;
                gbs // GB/s == bytes/ns
            }
        }
    }

    // ------------------------------------------------------------------
    // Accounting and event scheduling
    // ------------------------------------------------------------------

    /// Account the running task's progress on `cpu` up to `self.now` and
    /// invalidate its scheduled boundary.
    fn touch(&mut self, cpu: usize) {
        self.cpus[cpu].token += 1;
        let Some(tid) = self.cpus[cpu].running else {
            self.cpus[cpu].since = self.now;
            return;
        };
        let elapsed = self.now.saturating_sub(self.cpus[cpu].since);
        self.cpus[cpu].since = self.now;
        if elapsed == 0 {
            return;
        }
        // Split borrows: rate() needs &self, so compute it before the
        // mutable borrow of the task.
        let (is_waiting, current, home) = {
            let t = &self.tasks[tid.0 as usize];
            (
                matches!(t.state, TaskState::Waiting(_)),
                t.current,
                t.home_numa,
            )
        };
        if is_waiting {
            self.tasks[tid.0 as usize].stats.wait_time += elapsed;
            self.attr_wait_accrue(tid, elapsed as f64);
            return;
        }
        let mut budget = elapsed as f64;
        // Pending overheads are denominated in max-frequency nanoseconds
        // and are consumed at the core's current clock ratio.
        let nrate = self.ghz(cpu) / self.machine.clock.max_ghz;
        let (pot_used, pot_exhausted, pot_blocks);
        {
            let t = &mut self.tasks[tid.0 as usize];
            t.stats.busy_time += elapsed;
            if t.pending_overhead_ns > 0.0 {
                let consumable = budget * nrate;
                let used = t.pending_overhead_ns.min(consumable);
                t.pending_overhead_ns -= used;
                budget -= used / nrate;
                pot_used = used;
                if t.pending_overhead_ns > 1e-9 {
                    pot_exhausted = false;
                    pot_blocks = true;
                } else {
                    t.pending_overhead_ns = 0.0;
                    pot_exhausted = true;
                    pot_blocks = false;
                }
            } else {
                pot_used = 0.0;
                pot_exhausted = false;
                pot_blocks = false;
            }
        }
        if self.attr.is_some() {
            self.attr_drain_pot(tid, pot_used, nrate, pot_exhausted);
        }
        if pot_blocks {
            return;
        }
        if budget <= 0.0 {
            return;
        }
        let Some(cur) = current else {
            // Wake tail: a just-woken spinner's interval books as busy
            // time with nothing installed — it belongs to the wait
            // episode the in-flight wake() is about to classify.
            self.attr_wait_accrue(tid, budget);
            return;
        };
        if self.attr.is_some() {
            self.attr_busy(tid, cpu, budget, &cur, home);
        }
        let rate = self.rate(cpu, &cur, home);
        let done = budget * rate;
        let t = &mut self.tasks[tid.0 as usize];
        if let Some(cur) = &mut t.current {
            let rem = match cur {
                Timed::Cycles { rem, .. }
                | Timed::Ns { rem }
                | Timed::Bytes { rem }
                | Timed::AtomicNs { rem, .. } => rem,
            };
            *rem -= done;
            if *rem < 1e-9 {
                *rem = 0.0;
            }
        }
    }

    /// Schedule the next boundary event for `cpu` given its current state.
    fn schedule_boundary(&mut self, cpu: usize) {
        let Some(tid) = self.cpus[cpu].running else {
            return;
        };
        let t = &self.tasks[tid.0 as usize];
        let mut next: Option<Time> = None;
        if !matches!(t.state, TaskState::Waiting(_)) {
            let mut ns =
                t.pending_overhead_ns * self.machine.clock.max_ghz / self.ghz(cpu);
            if let Some(cur) = &t.current {
                let rem = match cur {
                    Timed::Cycles { rem, .. }
                    | Timed::Ns { rem }
                    | Timed::Bytes { rem }
                    | Timed::AtomicNs { rem, .. } => *rem,
                };
                ns += rem / self.rate(cpu, cur, t.home_numa);
            } else if ns <= 0.0 {
                // Nothing timed in flight. This is either a finished
                // task, or a *mid-advance transient*: a nested wake (e.g.
                // a barrier release inside this task's own advance())
                // repriced this CPU before the task installed its next
                // timed micro-op. Scheduling nothing is correct in both
                // cases — the in-progress advance()'s caller reschedules
                // with the freshly bumped token.
                return;
            }
            next = Some(self.now + from_ns_f64(ns));
        }
        // Quantum rotation if user tasks are queued behind.
        if t.kind == TaskKind::User && !self.cpus[cpu].uq.is_empty() {
            let q = self.cpus[cpu].quantum_end.max(self.now + 1);
            next = Some(next.map_or(q, |n| n.min(q)));
        }
        if let Some(time) = next {
            let token = self.cpus[cpu].token;
            self.queue.push(time, EventKind::CpuBoundary { cpu, token });
        }
    }

    /// Update the streaming-membership cache of `cpu` and reprice peers
    /// when domain contention changes.
    fn sync_stream(&mut self, cpu: usize) {
        let desired = match self.cpus[cpu].running {
            Some(tid) => {
                let t = &self.tasks[tid.0 as usize];
                match (&t.state, &t.current) {
                    (TaskState::Waiting(_), _) => None,
                    (_, Some(Timed::Bytes { .. })) => {
                        Some(t.home_numa.unwrap_or_else(|| self.numa_of_cpu(cpu)))
                    }
                    _ => None,
                }
            }
            None => None,
        };
        let cached = self.cpus[cpu].streaming;
        if desired == cached {
            return;
        }
        // Account every affected peer's progress *before* the accessor
        // sets change: their elapsed streaming ran at the old contention
        // level, and `touch` prices with the current set.
        let mut affected = std::mem::take(&mut self.scratch_cpus);
        affected.clear();
        if let Some(d) = cached {
            affected.extend(self.domains[d].streamers.iter().copied().filter(|&c| c != cpu));
        }
        if let Some(d) = desired {
            affected.extend(self.domains[d].streamers.iter().copied().filter(|&c| c != cpu));
        }
        affected.sort_unstable();
        affected.dedup();
        for &peer in &affected {
            self.touch(peer);
        }
        if let Some(d) = cached {
            let dom = &mut self.domains[d];
            if let Some(pos) = dom.streamers.iter().position(|&c| c == cpu) {
                dom.streamers.swap_remove(pos);
            }
        }
        if let Some(d) = desired {
            self.domains[d].streamers.push(cpu);
        }
        self.cpus[cpu].streaming = desired;
        for &c in &affected {
            self.schedule_boundary(c);
        }
        affected.clear();
        self.scratch_cpus = affected;
    }

    /// Install `tid` (or nothing) as the running task of `cpu`, keeping
    /// the busy bookkeeping (core activity → DVFS, ticks, SMT sibling
    /// rates) coherent.
    fn set_running(&mut self, cpu: usize, tid: Option<TaskId>) {
        let was_busy = self.cpus[cpu].running.is_some();
        self.cpus[cpu].running = tid;
        self.cpus[cpu].since = self.now;
        if let Some(t) = tid {
            self.tasks[t.0 as usize].cpu = cpu;
            if self.tasks[t.0 as usize].home_numa.is_none() {
                self.tasks[t.0 as usize].home_numa = Some(self.numa_of_cpu(cpu));
            }
            if self.tasks[t.0 as usize].kind == TaskKind::User {
                self.cpus[cpu].quantum_end = self.now + self.params.sched.quantum;
                // Close any descheduled (queued) interval now ending.
                self.attr_take_queued(t);
            }
        }
        let is_busy = self.cpus[cpu].running.is_some();
        if was_busy != is_busy {
            let core = self.core_of_cpu(cpu);
            let socket = self.socket_of_cpu(cpu);
            if is_busy {
                self.core_busy[core] += 1;
                if self.core_busy[core] == 1 {
                    self.sockets[socket].active_cores += 1;
                    self.queue.push(
                        self.now + self.params.freq.reaction_latency,
                        EventKind::FreqReeval { socket },
                    );
                }
                // Start the tick chain (disabled entirely when ticks are
                // free, e.g. under sterile parameters).
                self.cpus[cpu].tick_token += 1;
                if self.params.sched.tick_cost > 0 {
                    let token = self.cpus[cpu].tick_token;
                    self.queue.push(
                        self.now + self.params.sched.tick_period,
                        EventKind::TimerTick { cpu, token },
                    );
                }
            } else {
                self.core_busy[core] -= 1;
                if self.core_busy[core] == 0 {
                    self.sockets[socket].active_cores -= 1;
                    self.queue.push(
                        self.now + self.params.freq.reaction_latency,
                        EventKind::FreqReeval { socket },
                    );
                }
                self.cpus[cpu].tick_token += 1; // cancel ticks
            }
            // SMT sibling rate changed. The layout is regular
            // (`hw = core + lane * n_cores`), so the optimized path walks
            // the lanes directly instead of materializing a sibling Vec;
            // both orders are ascending, so the touch/reschedule sequence
            // is identical.
            if self.reference {
                for sib in self.machine.siblings_of(HwThreadId(cpu)) {
                    if self.cpus[sib.0].running.is_some() {
                        self.touch(sib.0);
                        self.schedule_boundary(sib.0);
                    }
                }
            } else {
                for lane in 0..self.smt {
                    let sib = core + lane * self.n_cores;
                    if sib != cpu && self.cpus[sib].running.is_some() {
                        self.touch(sib);
                        self.schedule_boundary(sib);
                    }
                }
            }
        }
    }

    /// Pick and start the next task on an idle `cpu`, advance it as far
    /// as possible, and schedule its boundary.
    fn commit(&mut self, cpu: usize) {
        if self.cpus[cpu].running.is_none() {
            let next = if let Some(k) = self.cpus[cpu].kq.pop_front() {
                Some(k)
            } else {
                self.cpus[cpu].uq.pop_front()
            };
            if let Some(t) = next {
                self.set_running(cpu, Some(t));
            }
        }
        if let Some(tid) = self.cpus[cpu].running {
            let t = &self.tasks[tid.0 as usize];
            if t.state == TaskState::Runnable && t.current.is_none() {
                self.advance(tid);
            }
        }
        self.sync_stream(cpu);
        self.schedule_boundary(cpu);
    }

    // ------------------------------------------------------------------
    // The op interpreter
    // ------------------------------------------------------------------

    /// Short label of a sync object's kind, for diagnostics.
    fn obj_kind(obj: &SyncObj) -> &'static str {
        match obj {
            SyncObj::Barrier(_) => "barrier",
            SyncObj::Lock(_) => "lock",
            SyncObj::Loop(_) => "loop",
            SyncObj::Atomic(_) => "atomic",
            SyncObj::Single(_) => "single",
            SyncObj::TaskPool(_) => "task-pool",
        }
    }

    /// Raise an [`SimError::ObjectTypeMismatch`] for `op` dispatched on
    /// `obj` (which is not the `expected` kind). The first error wins.
    fn type_mismatch(&mut self, op: &'static str, obj: ObjId, expected: &'static str) {
        if self.fatal.is_none() {
            self.fatal = Some(SimError::ObjectTypeMismatch {
                op,
                obj,
                expected,
                found: Self::obj_kind(&self.objs[obj.0 as usize]),
            });
        }
    }

    /// Drive `tid` (which must be the running task of its CPU, with no
    /// timed micro-op in flight) until it starts a timed micro-op, blocks,
    /// or finishes.
    fn advance(&mut self, tid: TaskId) {
        let ti = tid.0 as usize;
        loop {
            if self.fatal.is_some() {
                // A helper raised an unrecoverable error mid-advance; stop
                // interpreting so `run` can surface it after this event.
                return;
            }
            debug_assert!(self.tasks[ti].current.is_none());
            debug_assert_eq!(self.tasks[ti].state, TaskState::Runnable);
            let Some(micro) = self.tasks[ti].micro.pop_front() else {
                if !self.expand_next_op(tid) {
                    if self.fatal.is_none() {
                        self.finish_task(tid);
                    }
                    return;
                }
                continue;
            };
            match micro {
                MicroOp::Timed(t) => {
                    let rem = match &t {
                        Timed::Cycles { rem, .. }
                        | Timed::Ns { rem }
                        | Timed::Bytes { rem }
                        | Timed::AtomicNs { rem, .. } => *rem,
                    };
                    if rem <= 0.0 {
                        if let Timed::AtomicNs { obj, .. } = t {
                            self.atomic_done(obj);
                        }
                        continue;
                    }
                    self.tasks[ti].current = Some(t);
                    return;
                }
                MicroOp::Mark(marker) => {
                    self.markers.push(MarkerRecord {
                        time: self.now,
                        task: tid,
                        marker,
                    });
                }
                MicroOp::BarrierArrive(obj) => {
                    if self.barrier_arrive(tid, obj) {
                        return; // blocked (spinning)
                    }
                }
                MicroOp::LockAcquire(obj) => {
                    let cpu = self.tasks[ti].cpu;
                    // Critical span opens at the acquire attempt, so lock
                    // wait time is inside the span (EPCC measures it so).
                    self.trace_task(tid, TraceKind::Begin(SpanKind::Critical));
                    let SyncObj::Lock(l) = &mut self.objs[obj.0 as usize] else {
                        self.type_mismatch("LockAcquire", obj, "lock");
                        return;
                    };
                    if l.acquire(tid) {
                        let cost = self.params.sync.lock_ns * l.span_factor;
                        self.tasks[ti].pending_overhead_ns += cost;
                        self.attr_pot(tid, cost, AttrSource::RuntimeOverhead);
                        let _ = cpu;
                    } else {
                        self.tasks[ti].state = TaskState::Waiting(WaitKind::Lock(obj));
                        self.attr_flush_wait(tid); // open a fresh wait episode
                        return;
                    }
                }
                MicroOp::LockRelease(obj) => {
                    let SyncObj::Lock(l) = &mut self.objs[obj.0 as usize] else {
                        self.type_mismatch("LockRelease", obj, "lock");
                        return;
                    };
                    let span = l.span_factor;
                    if let Some(next) = l.release(tid) {
                        let cost = self.params.sync.lock_ns * span;
                        self.wake(next, cost);
                    }
                    self.trace_task(tid, TraceKind::End(SpanKind::Critical));
                }
                MicroOp::AtomicStart(obj) => {
                    let SyncObj::Atomic(a) = &mut self.objs[obj.0 as usize] else {
                        self.type_mismatch("AtomicStart", obj, "atomic");
                        return;
                    };
                    let cost = self.params.sync.atomic_ns
                        + self.params.sync.atomic_contention_ns
                            * a.active as f64
                            * a.span_factor;
                    a.active += 1;
                    a.ops += 1;
                    self.tasks[ti]
                        .micro
                        .push_front(MicroOp::Timed(Timed::AtomicNs { rem: cost, obj }));
                }
                MicroOp::GrabChunk(obj) => {
                    self.grab_chunk(tid, obj);
                }
                MicroOp::WaitTicket { obj, iter } => {
                    // Ordered span opens at the ticket wait: it covers the
                    // in-turn wait plus the ordered body.
                    self.trace_task(tid, TraceKind::Begin(SpanKind::Ordered));
                    let SyncObj::Loop(l) = &mut self.objs[obj.0 as usize] else {
                        self.type_mismatch("WaitTicket", obj, "loop");
                        return;
                    };
                    if !l.ticket_ready(iter) {
                        l.ordered_waiters.push((iter, tid));
                        self.tasks[ti].state =
                            TaskState::Waiting(WaitKind::Ticket { obj, iter });
                        self.attr_flush_wait(tid); // open a fresh wait episode
                        return;
                    }
                }
                MicroOp::TicketDone { obj } => {
                    self.trace_task(tid, TraceKind::End(SpanKind::Ordered));
                    let SyncObj::Loop(l) = &mut self.objs[obj.0 as usize] else {
                        self.type_mismatch("TicketDone", obj, "loop");
                        return;
                    };
                    let woken = l.ticket_advance();
                    if let Some(w) = woken {
                        let cost = self.params.sync.ordered_ns;
                        self.wake(w, cost);
                    }
                }
                MicroOp::TaskSpawnOne { obj, body_cycles } => {
                    let SyncObj::TaskPool(p) = &mut self.objs[obj.0 as usize] else {
                        self.type_mismatch("TaskSpawnOne", obj, "task-pool");
                        return;
                    };
                    // The task queue is a central, lock-protected
                    // structure (libgomp's team task lock): with k
                    // concurrent producers, each enqueue effectively waits
                    // behind k−1 others — modeled as k × the contended
                    // unit cost (an M/D/1-style full-contention bound).
                    let k = p.spawners as f64;
                    let cost = k
                        * (self.params.sync.task_spawn_ns
                            + self.params.sync.atomic_contention_ns * (k - 1.0))
                        * p.span_factor;
                    p.spawn(body_cycles);
                    self.tasks[ti].pending_overhead_ns += cost;
                    self.attr_pot(tid, cost, AttrSource::RuntimeOverhead);
                }
                MicroOp::TaskExecOrWait { obj } => {
                    let SyncObj::TaskPool(p) = &mut self.objs[obj.0 as usize] else {
                        self.type_mismatch("TaskExecOrWait", obj, "task-pool");
                        return;
                    };
                    match p.steal() {
                        Some(cycles) => {
                            // Steals serialize through the same central
                            // lock: the whole team contends during the
                            // drain phase.
                            let k = p.participants as f64;
                            let dispatch = k
                                * (self.params.sync.task_dispatch_ns
                                    + self.params.sync.atomic_contention_ns * (k - 1.0))
                                * p.span_factor;
                            let t = &mut self.tasks[ti];
                            t.pending_overhead_ns += dispatch;
                            t.micro.push_front(MicroOp::TaskExecOrWait { obj });
                            t.micro.push_front(MicroOp::TaskDone { obj });
                            t.micro.push_front(MicroOp::Timed(Timed::Cycles {
                                rem: cycles,
                                class: CorunClass::Latency,
                            }));
                            self.trace_task(tid, TraceKind::Begin(SpanKind::Task));
                            self.attr_pot(tid, dispatch, AttrSource::RuntimeOverhead);
                        }
                        None => {
                            if p.outstanding > 0 {
                                p.waiters.push(tid);
                                self.tasks[ti].state =
                                    TaskState::Waiting(WaitKind::TaskPool(obj));
                                self.attr_flush_wait(tid); // open a fresh wait episode
                                return;
                            }
                            // Pool fully drained: proceed.
                        }
                    }
                }
                MicroOp::TaskDone { obj } => {
                    self.trace_task(tid, TraceKind::End(SpanKind::Task));
                    let SyncObj::TaskPool(p) = &mut self.objs[obj.0 as usize] else {
                        self.type_mismatch("TaskDone", obj, "task-pool");
                        return;
                    };
                    let woken = p.complete();
                    let cost = self.params.sync.lock_ns;
                    if !woken.is_empty() {
                        for &w in &woken {
                            self.wake(w, cost);
                        }
                        // Return the drained waiter list for later
                        // task-waits to re-use (empty drains carry no
                        // allocation and are simply dropped).
                        if let SyncObj::TaskPool(p) = &mut self.objs[obj.0 as usize] {
                            p.recycle(woken);
                        }
                    }
                }
                MicroOp::SingleTry { obj, body_cycles } => {
                    self.trace_task(tid, TraceKind::Begin(SpanKind::Single));
                    let SyncObj::Single(s) = &mut self.objs[obj.0 as usize] else {
                        self.type_mismatch("SingleTry", obj, "single");
                        return;
                    };
                    if s.enter() {
                        // Close the span after the winner's body runs; the
                        // marker micro-op is free, so traced and untraced
                        // runs stay time-identical.
                        self.tasks[ti].micro.push_front(MicroOp::SpanEnd(SpanKind::Single));
                        if body_cycles > 0.0 {
                            self.tasks[ti].micro.push_front(MicroOp::Timed(Timed::Cycles {
                                rem: body_cycles,
                                class: CorunClass::Latency,
                            }));
                        }
                    } else {
                        let cost = self.params.sync.single_ns;
                        self.tasks[ti].pending_overhead_ns += cost;
                        self.attr_pot(tid, cost, AttrSource::RuntimeOverhead);
                        self.trace_task(tid, TraceKind::End(SpanKind::Single));
                    }
                }
                MicroOp::SpanEnd(kind) => {
                    self.trace_task(tid, TraceKind::End(kind));
                }
            }
        }
    }

    /// Expand the op at `pc` into micro-ops. Returns `false` when the
    /// program has ended.
    fn expand_next_op(&mut self, tid: TaskId) -> bool {
        let ti = tid.0 as usize;
        loop {
            let pc = self.tasks[ti].pc;
            if pc >= self.tasks[ti].program.ops().len() {
                return false;
            }
            let op = self.tasks[ti].program.ops()[pc];
            match op {
                Op::LoopBegin { count } => {
                    self.tasks[ti]
                        .frames
                        .push(crate::task::LoopFrame {
                            begin_pc: pc,
                            remaining: count - 1,
                        });
                    self.tasks[ti].pc += 1;
                    continue;
                }
                Op::LoopEnd => {
                    let frame = self
                        .tasks[ti]
                        .frames
                        .last_mut()
                        .expect("LoopEnd without frame");
                    if frame.remaining > 0 {
                        frame.remaining -= 1;
                        let back = frame.begin_pc + 1;
                        self.tasks[ti].pc = back;
                    } else {
                        self.tasks[ti].frames.pop();
                        self.tasks[ti].pc += 1;
                    }
                    continue;
                }
                Op::Compute { cycles, class } => {
                    self.tasks[ti]
                        .micro
                        .push_back(MicroOp::Timed(Timed::Cycles { rem: cycles, class }));
                }
                Op::Busy { ns } => {
                    self.tasks[ti]
                        .micro
                        .push_back(MicroOp::Timed(Timed::Ns { rem: ns }));
                }
                Op::MemStream { bytes } => {
                    self.tasks[ti]
                        .micro
                        .push_back(MicroOp::Timed(Timed::Bytes { rem: bytes }));
                }
                Op::Mark { marker } => {
                    self.tasks[ti].micro.push_back(MicroOp::Mark(marker));
                }
                Op::Barrier { obj } => {
                    let (n, span) = match &self.objs[obj.0 as usize] {
                        SyncObj::Barrier(b) => (b.n, b.span_factor),
                        _ => {
                            self.type_mismatch("Barrier", obj, "barrier");
                            return false;
                        }
                    };
                    let arrive = self.params.sync.barrier_arrive_ns
                        + self.params.sync.barrier_arrive_per_thread_ns
                            * (n.saturating_sub(1)) as f64
                            * span;
                    self.tasks[ti]
                        .micro
                        .push_back(MicroOp::Timed(Timed::Ns { rem: arrive }));
                    self.tasks[ti].micro.push_back(MicroOp::BarrierArrive(obj));
                    // The barrier span covers arrive overhead + wait: it
                    // opens here and closes on release (in `wake`, or in
                    // `barrier_arrive` for the last arriver).
                    self.trace_task(tid, TraceKind::Begin(SpanKind::Barrier));
                }
                Op::LockAcquire { obj } => {
                    self.tasks[ti].micro.push_back(MicroOp::LockAcquire(obj));
                }
                Op::LockRelease { obj } => {
                    self.tasks[ti].micro.push_back(MicroOp::LockRelease(obj));
                }
                Op::AtomicOp { obj } => {
                    self.tasks[ti].micro.push_back(MicroOp::AtomicStart(obj));
                }
                Op::ForLoop { obj } => {
                    // Re-arm the task-private loop cursor: it is shared
                    // across loop objects, and two distinct loops whose
                    // generation counters coincide would otherwise alias —
                    // the second loop would see a stale exhausted cursor
                    // and hand this task no work at all.
                    self.tasks[ti].loop_gen = u64::MAX;
                    self.tasks[ti].loop_pos = 0;
                    self.tasks[ti].micro.push_back(MicroOp::GrabChunk(obj));
                    self.trace_task(tid, TraceKind::Begin(SpanKind::Workshare));
                }
                Op::Single { obj, body_cycles } => {
                    self.tasks[ti]
                        .micro
                        .push_back(MicroOp::SingleTry { obj, body_cycles });
                }
                Op::TaskSpawn {
                    obj,
                    count,
                    body_cycles,
                } => {
                    for _ in 0..count {
                        self.tasks[ti]
                            .micro
                            .push_back(MicroOp::TaskSpawnOne { obj, body_cycles });
                    }
                }
                Op::TaskWait { obj } => {
                    self.tasks[ti].micro.push_back(MicroOp::TaskExecOrWait { obj });
                }
            }
            self.tasks[ti].pc += 1;
            return true;
        }
    }

    /// Handle a chunk grab for `tid` on loop `obj`, pushing the dispatch
    /// cost and the body work as micro-ops.
    fn grab_chunk(&mut self, tid: TaskId, obj: ObjId) {
        let ti = tid.0 as usize;
        let rank = self.tasks[ti].rank;
        let (mut lgen, mut lpos) = (self.tasks[ti].loop_gen, self.tasks[ti].loop_pos);
        let SyncObj::Loop(l) = &mut self.objs[obj.0 as usize] else {
            self.type_mismatch("GrabChunk", obj, "loop");
            return;
        };
        let grab = l.grab(rank, &mut lgen, &mut lpos);
        self.tasks[ti].loop_gen = lgen;
        self.tasks[ti].loop_pos = lpos;
        let SyncObj::Loop(l) = &self.objs[obj.0 as usize] else {
            unreachable!()
        };
        match grab {
            None => {
                let SyncObj::Loop(l) = &mut self.objs[obj.0 as usize] else {
                    unreachable!()
                };
                l.observe_exhausted();
                // Loop op done; fall through to the next micro/op.
                self.trace_task(tid, TraceKind::End(SpanKind::Workshare));
            }
            Some(g) => {
                let sync = &self.params.sync;
                let per_grab = match l.spec.schedule {
                    crate::sync::LoopSchedule::Static { .. } => sync.static_grab_ns,
                    crate::sync::LoopSchedule::Dynamic { .. }
                    | crate::sync::LoopSchedule::Guided { .. } => {
                        sync.atomic_ns
                            + sync.atomic_contention_ns
                                * l.active().saturating_sub(1) as f64
                                * l.spec.span_factor
                    }
                };
                let dispatch = per_grab * g.n_grabs as f64;
                let body_cycles = l.spec.body_cycles;
                let body_class = l.spec.body_class;
                let ordered = l.spec.ordered_section_ns;
                let t = &mut self.tasks[ti];
                if dispatch > 0.0 {
                    t.micro
                        .push_back(MicroOp::Timed(Timed::Ns { rem: dispatch }));
                }
                match ordered {
                    None => {
                        t.micro.push_back(MicroOp::Timed(Timed::Cycles {
                            rem: body_cycles * g.iters as f64,
                            class: body_class,
                        }));
                    }
                    Some(section_ns) => {
                        for i in g.first_iter..g.first_iter + g.iters {
                            t.micro.push_back(MicroOp::Timed(Timed::Cycles {
                                rem: body_cycles,
                                class: body_class,
                            }));
                            t.micro.push_back(MicroOp::WaitTicket { obj, iter: i });
                            t.micro
                                .push_back(MicroOp::Timed(Timed::Ns { rem: section_ns }));
                            t.micro.push_back(MicroOp::TicketDone { obj });
                        }
                    }
                }
                t.micro.push_back(MicroOp::SpanEnd(SpanKind::Chunk));
                t.micro.push_back(MicroOp::GrabChunk(obj));
                self.trace_task(tid, TraceKind::Begin(SpanKind::Chunk));
            }
        }
    }

    /// Barrier arrival. Returns `true` when the task blocked.
    fn barrier_arrive(&mut self, tid: TaskId, obj: ObjId) -> bool {
        let cpu = self.tasks[tid.0 as usize].cpu;
        let SyncObj::Barrier(b) = &mut self.objs[obj.0 as usize] else {
            self.type_mismatch("BarrierArrive", obj, "barrier");
            return true; // treat as blocked: advance() stops, run() errors
        };
        if b.arrive(cpu) {
            let span = b.span_factor;
            let last_cpu = b.last_cpu;
            let waiters = b.release();
            let base = self.params.sync.barrier_release_ns;
            let per_dist = self.params.sync.barrier_release_per_distance_ns;
            // The last arriver pays the base release cost itself.
            self.tasks[tid.0 as usize].pending_overhead_ns += base * span;
            self.attr_pot(tid, base * span, AttrSource::RuntimeOverhead);
            self.trace_task(tid, TraceKind::End(SpanKind::Barrier));
            for &w in &waiters {
                let wcpu = self.tasks[w.0 as usize].cpu;
                let d = self
                    .machine
                    .distance(HwThreadId(last_cpu), HwThreadId(wcpu)) as f64;
                self.wake(w, base + per_dist * d);
            }
            // Hand the drained waiter list back so the next round's
            // arrivals re-use its capacity instead of growing a fresh one.
            if let SyncObj::Barrier(b) = &mut self.objs[obj.0 as usize] {
                b.recycle(waiters);
            }
            false
        } else {
            b.waiters.push(tid);
            self.tasks[tid.0 as usize].state = TaskState::Waiting(WaitKind::Barrier(obj));
            self.attr_flush_wait(tid); // open a fresh wait episode
            true
        }
    }

    /// Wake a spin-waiting task: it becomes runnable with `cost_ns` of
    /// wake-up latency; if it currently holds its CPU it resumes at once.
    ///
    /// Unbound tasks are additionally subject to *wake migration*: with
    /// the configured probability, the scheduler re-places them as if
    /// they had slept through the wait and were woken fresh — they drift
    /// away from their first-touch NUMA domain and occasionally stack on
    /// busy CPUs, the paper's "before thread-pinning" behaviour.
    fn wake(&mut self, tid: TaskId, cost_ns: f64) {
        let ti = tid.0 as usize;
        debug_assert!(matches!(self.tasks[ti].state, TaskState::Waiting(_)));
        if self.lost_wakeups_armed > 0 {
            // Lost-wakeup fault: the release never reaches this waiter.
            // The waker already removed it from the object's waiter list,
            // so it spins forever — the watchdog reports the deadlock.
            self.lost_wakeups_armed -= 1;
            self.counters.lost_wakeups += 1;
            return;
        }
        // A waiter released from a barrier closes its barrier span here
        // (its `BarrierArrive` micro-op was consumed when it blocked).
        if matches!(
            self.tasks[ti].state,
            TaskState::Waiting(WaitKind::Barrier(_))
        ) {
            self.trace_task(tid, TraceKind::End(SpanKind::Barrier));
        }
        self.tasks[ti].state = TaskState::Runnable;
        self.tasks[ti].pending_overhead_ns += cost_ns;
        self.attr_pot(tid, cost_ns, AttrSource::RuntimeOverhead);
        let cpu = self.tasks[ti].cpu;
        if self.tasks[ti].pin.is_none()
            && self.params.sched.wake_migrate_prob > 0.0
            && self.rng_place.chance(self.params.sched.wake_migrate_prob)
        {
            let target = if self.rng_place.chance(self.params.sched.wake_misplace_prob) {
                let c = self.rng_place.index(self.cpus.len());
                if self.cpus[c].offline {
                    Self::least_loaded_cpu(&mut self.rng_place, &self.cpus, &self.machine, self.reference)
                } else {
                    c
                }
            } else {
                Self::least_loaded_cpu(&mut self.rng_place, &self.cpus, &self.machine, self.reference)
            };
            if target != cpu {
                // Detach from the current CPU (running or queued).
                if self.cpus[cpu].running == Some(tid) {
                    self.touch(cpu);
                    self.set_running(cpu, None);
                    self.migrate(tid, cpu, target);
                    self.commit(cpu);
                } else if let Some(pos) = self.cpus[cpu].uq.iter().position(|&t| t == tid) {
                    self.cpus[cpu].uq.remove(pos);
                    self.migrate(tid, cpu, target);
                }
                // The wake completed: classify the closed wait episode.
                self.attr_flush_wait(tid);
                return;
            }
        }
        if self.cpus[cpu].running == Some(tid) {
            self.touch(cpu);
            self.commit(cpu);
        }
        // Otherwise the task is queued and resumes when next dispatched.
        // Either way the wake completed: classify the closed wait episode
        // (after touch() has folded the final spin interval into it).
        self.attr_flush_wait(tid);
    }

    /// Completion of a contended atomic: release its slot.
    fn atomic_done(&mut self, obj: ObjId) {
        let SyncObj::Atomic(a) = &mut self.objs[obj.0 as usize] else {
            self.type_mismatch("AtomicDone", obj, "atomic");
            return;
        };
        debug_assert!(a.active > 0);
        a.active -= 1;
    }

    /// Remove a finished task from its CPU and recycle kernel tasks.
    fn finish_task(&mut self, tid: TaskId) {
        let ti = tid.0 as usize;
        if self.tasks[ti].kind == TaskKind::User {
            self.trace_task(tid, TraceKind::End(SpanKind::Region));
        }
        self.tasks[ti].state = TaskState::Done;
        let cpu = self.tasks[ti].cpu;
        debug_assert_eq!(self.cpus[cpu].running, Some(tid));
        self.set_running(cpu, None);
        match self.tasks[ti].kind {
            TaskKind::User => {
                self.users_remaining -= 1;
            }
            TaskKind::Kernel => {
                self.kernel_freelist.push(tid);
            }
        }
        self.commit(cpu);
    }

    // ------------------------------------------------------------------
    // Placement, noise, load balancing
    // ------------------------------------------------------------------

    /// Pick the least-loaded online CPU: idle CPUs on fully idle cores
    /// first, then idle CPUs, then minimal queue length; ties broken
    /// randomly. Offline CPUs are never chosen (the hotplug fault keeps
    /// at least one CPU online).
    fn least_loaded_cpu(rng: &mut Rng, cpus: &[Cpu], machine: &MachineSpec, reference: bool) -> usize {
        if reference {
            // Pre-optimization body, kept verbatim: candidate Vec plus
            // per-CPU sibling-Vec allocations.
            let mut best_key = (u8::MAX, usize::MAX);
            let mut best: Vec<usize> = Vec::new();
            for (i, c) in cpus.iter().enumerate() {
                if c.offline {
                    continue;
                }
                let load = c.load();
                let core_idle = machine
                    .hw_threads_of_core(machine.core_of(HwThreadId(i)))
                    .iter()
                    .all(|h| cpus[h.0].load() == 0);
                let class = if load == 0 && core_idle {
                    0
                } else if load == 0 {
                    1
                } else {
                    2
                };
                let key = (class, load);
                if key < best_key {
                    best_key = key;
                    best.clear();
                    best.push(i);
                } else if key == best_key {
                    best.push(i);
                }
            }
            return best[rng.index(best.len())];
        }
        // Allocation-free variant: two passes over the CPUs, first to
        // find the best (class, load) key and the candidate count, then —
        // after drawing `rng.index(count)`, the same single RNG draw the
        // reference body makes over the same candidate set — to locate
        // the drawn candidate. Core idleness comes from the regular
        // layout (`hw = core + lane * n_cores`) instead of a sibling Vec.
        let n_cores = machine.n_cores();
        let smt = machine.smt;
        let key_of = |i: usize, c: &Cpu| -> Option<(u8, usize)> {
            if c.offline {
                return None;
            }
            let load = c.load();
            let core = i % n_cores;
            let core_idle = (0..smt).all(|s| cpus[core + s * n_cores].load() == 0);
            let class = if load == 0 && core_idle {
                0
            } else if load == 0 {
                1
            } else {
                2
            };
            Some((class, load))
        };
        let mut best_key = (u8::MAX, usize::MAX);
        let mut count = 0usize;
        for (i, c) in cpus.iter().enumerate() {
            match key_of(i, c) {
                Some(key) if key < best_key => {
                    best_key = key;
                    count = 1;
                }
                Some(key) if key == best_key => count += 1,
                _ => {}
            }
        }
        let mut k = rng.index(count);
        for (i, c) in cpus.iter().enumerate() {
            if key_of(i, c) == Some(best_key) {
                if k == 0 {
                    return i;
                }
                k -= 1;
            }
        }
        unreachable!("candidate set changed between passes")
    }

    /// Initial placement of a user task.
    fn initial_cpu(&mut self, tid: TaskId) -> usize {
        let pin = self.tasks[tid.0 as usize].pin.clone();
        match pin {
            Some(place) => {
                // Least loaded online CPU within the place; if the whole
                // place is offline, fall back to any online CPU.
                let mut best = None;
                let mut best_load = usize::MAX;
                for &h in place.hw_threads() {
                    if self.cpus[h.0].offline {
                        continue;
                    }
                    let l = self.cpus[h.0].load();
                    if l < best_load {
                        best_load = l;
                        best = Some(h.0);
                    }
                }
                best.unwrap_or_else(|| {
                    Self::least_loaded_cpu(&mut self.rng_place, &self.cpus, &self.machine, self.reference)
                })
            }
            None => {
                if self
                    .rng_place
                    .chance(self.params.sched.wake_misplace_prob)
                {
                    let c = self.rng_place.index(self.cpus.len());
                    if self.cpus[c].offline {
                        Self::least_loaded_cpu(&mut self.rng_place, &self.cpus, &self.machine, self.reference)
                    } else {
                        c
                    }
                } else {
                    Self::least_loaded_cpu(&mut self.rng_place, &self.cpus, &self.machine, self.reference)
                }
            }
        }
    }

    /// Enqueue a ready task on `cpu`, preempting per priority rules.
    fn enqueue(&mut self, tid: TaskId, cpu: usize) {
        let kind = self.tasks[tid.0 as usize].kind;
        self.tasks[tid.0 as usize].cpu = cpu;
        match kind {
            TaskKind::Kernel => {
                match self.cpus[cpu].running {
                    Some(r) if self.tasks[r.0 as usize].kind == TaskKind::User => {
                        // Kernel work preempts user work immediately; the
                        // victim additionally pays a cache-refill penalty
                        // when it resumes, scaled by how long the kernel
                        // work ran (how much cache it displaced).
                        self.touch(cpu);
                        self.set_running(cpu, None);
                        self.cpus[cpu].uq.push_front(r);
                        let dur_ns = match self.tasks[tid.0 as usize].program.ops().first() {
                            Some(Op::Busy { ns }) => *ns,
                            _ => self.params.sched.refill_saturation_ns,
                        };
                        let scale =
                            (dur_ns / self.params.sched.refill_saturation_ns).min(1.0);
                        let refill = scale * self.params.sched.preempt_refill_cycles
                            / self.ghz(cpu).max(0.1);
                        self.tasks[r.0 as usize].pending_overhead_ns += refill;
                        self.tasks[r.0 as usize].stats.preemptions += 1;
                        self.counters.preemptions += 1;
                        self.trace_task(r, TraceKind::Instant(InstantKind::NoisePreemption));
                        // The refill penalty and the queue residence until
                        // the victim resumes are both preemption noise.
                        self.attr_pot(r, refill, AttrSource::Preemption);
                        self.attr_set_queued(r);
                        self.cpus[cpu].kq.push_back(tid);
                        self.commit(cpu);
                    }
                    Some(_) => {
                        self.cpus[cpu].kq.push_back(tid);
                        // Boundary already scheduled for the running kernel
                        // task; nothing to do.
                    }
                    None => {
                        self.cpus[cpu].kq.push_back(tid);
                        self.commit(cpu);
                    }
                }
            }
            TaskKind::User => {
                if self.cpus[cpu].running.is_none() && self.cpus[cpu].kq.is_empty() {
                    self.cpus[cpu].uq.push_back(tid);
                    self.attr_set_queued(tid); // usually closed immediately by commit
                    self.commit(cpu);
                } else {
                    // Refresh the current quantum if it already expired.
                    if self.cpus[cpu].quantum_end <= self.now {
                        self.cpus[cpu].quantum_end = self.now + self.params.sched.quantum;
                    }
                    self.cpus[cpu].uq.push_back(tid);
                    self.attr_set_queued(tid);
                    // The running task now has competition: reprice so the
                    // quantum boundary takes effect.
                    self.touch(cpu);
                    self.schedule_boundary(cpu);
                }
            }
        }
    }

    /// Spawn one kernel noise task of duration `ns` on `cpu`.
    fn spawn_kernel(&mut self, cpu: usize, ns: f64) {
        let tid = match self.kernel_freelist.pop() {
            Some(id) => {
                let t = &mut self.tasks[id.0 as usize];
                t.program.reset_to_busy(ns);
                t.pc = 0;
                t.frames.clear();
                t.micro.clear();
                t.current = None;
                t.state = TaskState::Runnable;
                t.pending_overhead_ns = 0.0;
                t.loop_gen = u64::MAX;
                id
            }
            None => {
                let id = TaskId(self.tasks.len() as u32);
                let program = Program::new(vec![Op::Busy { ns }]);
                self.tasks
                    .push(Task::new(id, TaskKind::Kernel, 0, program, None));
                id
            }
        };
        self.counters.noise_busy += from_ns_f64(ns);
        self.enqueue(tid, cpu);
    }

    /// One load-balancing pass: move queued, movable user tasks from
    /// overloaded CPUs to idle ones.
    fn load_balance(&mut self) {
        let n = self.cpus.len();
        for cpu in 0..n {
            while !self.cpus[cpu].uq.is_empty()
                && self.cpus[cpu].uq.len() + usize::from(self.cpus[cpu].running.is_some()) >= 2
            {
                // Overloaded: this CPU has a runner plus waiters (or ≥2
                // waiters while a kernel task runs). Try to move the last
                // queued movable user task.
                let Some(pos) = self.cpus[cpu]
                    .uq
                    .iter()
                    .rposition(|t| self.movable(*t))
                else {
                    break;
                };
                let stale = self
                    .rng_balance
                    .chance(self.params.sched.balance_stale_prob);
                let target = {
                    let tid = self.cpus[cpu].uq[pos];
                    self.balance_target(tid, cpu, stale)
                };
                let Some(target) = target else { break };
                if target == cpu {
                    break;
                }
                let tid = self.cpus[cpu].uq.remove(pos).unwrap();
                self.migrate(tid, cpu, target);
            }
        }
    }

    /// Whether a queued user task may be migrated (unbound, or bound to a
    /// multi-CPU place).
    fn movable(&self, tid: TaskId) -> bool {
        let t = &self.tasks[tid.0 as usize];
        t.kind == TaskKind::User
            && match &t.pin {
                None => true,
                Some(p) => p.len() > 1,
            }
    }

    /// Choose a migration target for `tid` (currently on `from`).
    fn balance_target(&mut self, tid: TaskId, from: usize, stale: bool) -> Option<usize> {
        let t = &self.tasks[tid.0 as usize];
        let allowed: Vec<usize> = match &t.pin {
            Some(p) => p.hw_threads().iter().map(|h| h.0).collect(),
            None => (0..self.cpus.len()).collect(),
        };
        let allowed: Vec<usize> = allowed
            .into_iter()
            .filter(|&c| !self.cpus[c].offline)
            .collect();
        if allowed.is_empty() {
            return None;
        }
        if stale {
            // Stale load information: any allowed CPU, possibly busy.
            return Some(allowed[self.rng_balance.index(allowed.len())]);
        }
        // Prefer idle CPUs, nearest first.
        let mut best: Option<(u32, usize)> = None;
        let mut cands: Vec<usize> = Vec::new();
        for &c in &allowed {
            if c == from || self.cpus[c].load() > 0 {
                continue;
            }
            let d = self.machine.distance(HwThreadId(from), HwThreadId(c));
            match best {
                None => {
                    best = Some((d, c));
                    cands.clear();
                    cands.push(c);
                }
                Some((bd, _)) if d < bd => {
                    best = Some((d, c));
                    cands.clear();
                    cands.push(c);
                }
                Some((bd, _)) if d == bd => cands.push(c),
                _ => {}
            }
        }
        if cands.is_empty() {
            None
        } else {
            Some(cands[self.rng_balance.index(cands.len())])
        }
    }

    /// Migrate queued task `tid` from `from` to `to`, charging the
    /// cache-warmup penalty.
    fn migrate(&mut self, tid: TaskId, from: usize, to: usize) {
        let d = self.machine.distance(HwThreadId(from), HwThreadId(to)) as f64;
        let ghz = self.ghz(to);
        let penalty_ns =
            self.params.sched.migration_penalty_cycles * (1.0 + d) / ghz.max(0.1);
        let t = &mut self.tasks[tid.0 as usize];
        t.pending_overhead_ns += penalty_ns;
        t.stats.migrations += 1;
        self.counters.migrations += 1;
        self.attr_pot(tid, penalty_ns, AttrSource::Migration);
        self.enqueue(tid, to);
    }

    // ------------------------------------------------------------------
    // Event handlers and the main loop
    // ------------------------------------------------------------------

    fn start(&mut self) {
        assert!(!self.started);
        self.started = true;
        // Size the attribution table to the pre-run task table: every
        // user task gets a ledger; kernel tasks spawned from here on get
        // ids past the end and are ignored by the attr helpers.
        if let Some(a) = &mut self.attr {
            a.per_task = (0..self.tasks.len()).map(|_| TaskAttr::default()).collect();
        }
        // Place and enqueue user tasks in spawn order.
        let users = self.user_tasks.clone();
        for tid in users {
            let cpu = self.initial_cpu(tid);
            // Open the region span before enqueue: placement may run the
            // task synchronously, and its construct spans must nest inside.
            if let Some(buf) = &mut self.trace {
                buf.push(TraceEvent {
                    time_ns: self.now,
                    thread: self.tasks[tid.0 as usize].rank as u32,
                    core: cpu as u32,
                    kind: TraceKind::Begin(SpanKind::Region),
                });
            }
            self.enqueue(tid, cpu);
        }
        // Arm noise arrival processes.
        for s in 0..self.noise_streams.len() {
            self.arm_noise(s);
        }
        // Periodic services.
        if self.params.sched.balance_interval > 0 {
            self.queue
                .push(self.params.sched.balance_interval, EventKind::LoadBalance);
        }
        if let Some(cfg) = self.logger {
            self.queue.push(cfg.period, EventKind::FreqSample);
        }
        // Schedule fault injections (and the ends of timed windows).
        for (i, ev) in self.fault_plan.clone().into_iter().enumerate() {
            self.queue.push(ev.at, EventKind::FaultStart { idx: i as u32 });
            match ev.fault {
                Fault::CpuOffline {
                    duration: Some(d), ..
                }
                | Fault::FreqCap {
                    duration: Some(d), ..
                } => {
                    self.queue
                        .push(ev.at.saturating_add(d), EventKind::FaultEnd { idx: i as u32 });
                }
                _ => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    fn handle_fault_start(&mut self, idx: usize) {
        self.counters.faults_injected += 1;
        self.trace_global(InstantKind::FaultInjection, CORE_UNKNOWN);
        match self.fault_plan[idx].fault {
            Fault::NoiseStorm { .. } => self.handle_fault_storm_tick(idx),
            Fault::CpuOffline { cpu, .. } => self.fault_cpu_offline(cpu),
            Fault::FreqCap { socket, cap_ghz, .. } => {
                self.fault_freq_cap(socket, Some(cap_ghz));
            }
            Fault::TaskStall { rank, stall_ns } => self.fault_task_stall(idx, rank, stall_ns),
            Fault::LostWakeups { count } => {
                self.lost_wakeups_armed += count;
            }
        }
    }

    fn handle_fault_end(&mut self, idx: usize) {
        match self.fault_plan[idx].fault {
            Fault::CpuOffline { cpu, .. } => {
                self.cpus[cpu].offline = false;
            }
            Fault::FreqCap { socket, .. } => self.fault_freq_cap(socket, None),
            _ => {}
        }
    }

    /// One arrival of an active noise storm: a kernel task on a random
    /// online CPU, then the next arrival — until the window closes.
    fn handle_fault_storm_tick(&mut self, idx: usize) {
        let FaultEvent { at, fault } = self.fault_plan[idx];
        let Fault::NoiseStorm {
            duration,
            mean_interval,
            median_task,
            sigma,
        } = fault
        else {
            return;
        };
        if self.now >= at.saturating_add(duration) {
            return;
        }
        // Draw the target from the online set without materializing it:
        // count, draw an index, then find the drawn CPU — the same single
        // `rng.index(count)` over the same set as the collected variant.
        let n_online = self.cpus.iter().filter(|c| !c.offline).count();
        let (cpu, dur_ns, dt_ns) = {
            let rng = &mut self.fault_rngs[idx];
            let mut k = rng.index(n_online);
            let mut cpu = usize::MAX;
            for (i, c) in self.cpus.iter().enumerate() {
                if !c.offline {
                    if k == 0 {
                        cpu = i;
                        break;
                    }
                    k -= 1;
                }
            }
            debug_assert!(cpu != usize::MAX);
            (
                cpu,
                rng.lognormal(median_task as f64, sigma),
                rng.exp(mean_interval as f64),
            )
        };
        self.counters.noise_events += 1;
        self.spawn_kernel(cpu, dur_ns);
        self.queue.push(
            self.now.saturating_add(from_ns_f64(dt_ns)),
            EventKind::FaultStormTick { idx: idx as u32 },
        );
    }

    /// Take `cpu` down: evacuate its queues and its running task, then
    /// refuse new work until the matching [`EventKind::FaultEnd`]. The
    /// last online CPU is never taken down (the fault degrades, it does
    /// not brick the machine).
    fn fault_cpu_offline(&mut self, cpu: usize) {
        if self.cpus[cpu].offline
            || self.cpus.iter().filter(|c| !c.offline).count() <= 1
        {
            return;
        }
        self.cpus[cpu].offline = true;
        // Evacuate queued work first so the eviction below cannot
        // re-dispatch onto this CPU.
        let uq: Vec<TaskId> = self.cpus[cpu].uq.drain(..).collect();
        let kq: Vec<TaskId> = self.cpus[cpu].kq.drain(..).collect();
        for tid in uq {
            let target = self.offline_evac_target(tid);
            self.migrate(tid, cpu, target);
        }
        for tid in kq {
            let target = Self::least_loaded_cpu(&mut self.rng_place, &self.cpus, &self.machine, self.reference);
            self.enqueue(tid, target);
        }
        // Evict whatever is on the CPU right now (running or spinning).
        if let Some(tid) = self.cpus[cpu].running {
            self.touch(cpu);
            self.set_running(cpu, None);
            match self.tasks[tid.0 as usize].kind {
                TaskKind::User => {
                    let target = self.offline_evac_target(tid);
                    self.migrate(tid, cpu, target);
                }
                TaskKind::Kernel => {
                    let target =
                        Self::least_loaded_cpu(&mut self.rng_place, &self.cpus, &self.machine, self.reference);
                    self.enqueue(tid, target);
                }
            }
        }
        self.sync_stream(cpu);
    }

    /// Evacuation target for a user task leaving an offlined CPU:
    /// least-loaded online CPU of its place, else any online CPU.
    fn offline_evac_target(&mut self, tid: TaskId) -> usize {
        let pin = self.tasks[tid.0 as usize].pin.clone();
        if let Some(p) = pin {
            let mut best = None;
            let mut best_load = usize::MAX;
            for &h in p.hw_threads() {
                if self.cpus[h.0].offline {
                    continue;
                }
                let l = self.cpus[h.0].load();
                if l < best_load {
                    best_load = l;
                    best = Some(h.0);
                }
            }
            if let Some(b) = best {
                return b;
            }
        }
        Self::least_loaded_cpu(&mut self.rng_place, &self.cpus, &self.machine, self.reference)
    }

    /// Apply (or lift, with `cap: None`) a frequency cap on one socket or
    /// all of them; retargets fire immediately (thermal throttling does
    /// not wait for the governor).
    fn fault_freq_cap(&mut self, socket: Option<usize>, cap: Option<f64>) {
        let targets: Vec<usize> = match socket {
            Some(s) if s < self.sockets.len() => vec![s],
            Some(_) => Vec::new(),
            None => (0..self.sockets.len()).collect(),
        };
        for s in targets {
            self.sockets[s].cap_ghz = cap;
            self.queue.push(self.now, EventKind::FreqReeval { socket: s });
        }
    }

    /// Charge one unfinished user task a lump of opaque overhead.
    fn fault_task_stall(&mut self, idx: usize, rank: Option<usize>, stall_ns: f64) {
        let unfinished: Vec<TaskId> = self
            .user_tasks
            .iter()
            .copied()
            .filter(|&t| self.tasks[t.0 as usize].state != TaskState::Done)
            .collect();
        if unfinished.is_empty() {
            return;
        }
        let victim = match rank {
            Some(r) => match unfinished
                .iter()
                .find(|&&t| self.tasks[t.0 as usize].rank == r)
            {
                Some(&t) => t,
                None => return,
            },
            None => unfinished[self.fault_rngs[idx].index(unfinished.len())],
        };
        let cpu = self.tasks[victim.0 as usize].cpu;
        let running_here = self.cpus[cpu].running == Some(victim);
        if running_here {
            self.touch(cpu);
        }
        self.tasks[victim.0 as usize].pending_overhead_ns += stall_ns;
        self.attr_pot(victim, stall_ns, AttrSource::FaultStall);
        if running_here {
            self.schedule_boundary(cpu);
        }
    }

    fn arm_noise(&mut self, s: usize) {
        let interval = {
            let stream = &mut self.noise_streams[s];
            let src = &self.params.noise.sources[stream.source];
            stream.rng.exp(src.mean_interval as f64)
        };
        self.queue.push(
            self.now.saturating_add(from_ns_f64(interval)),
            EventKind::NoiseArrival { src: s as u32 },
        );
    }

    fn handle_noise_arrival(&mut self, s: usize) {
        self.counters.noise_events += 1;
        let (cpu, dur_ns) = {
            let stream = &mut self.noise_streams[s];
            let src = &self.params.noise.sources[stream.source];
            let dur = stream
                .rng
                .lognormal(src.median_duration as f64, src.duration_sigma);
            let cpu = match src.placement {
                NoisePlacement::PerCpu => {
                    // Linux-style wake placement: most per-CPU kernel
                    // housekeeping (softirq, unbound kworkers) can run on
                    // an idle SMT sibling instead of preempting the home
                    // CPU — the mechanism behind the paper's ST
                    // configuration "absorbing" OS noise. CPU-bound
                    // kernel work (the remaining fraction) must preempt.
                    let home = stream.cpu.unwrap();
                    if self.cpus[home].load() == 0 {
                        home
                    } else if stream.rng.chance(self.params.noise.sibling_absorb_prob) {
                        self.machine
                            .siblings_of(HwThreadId(home))
                            .into_iter()
                            .map(|h| h.0)
                            .find(|&s| self.cpus[s].load() == 0)
                            .unwrap_or(home)
                    } else {
                        home
                    }
                }
                NoisePlacement::RandomCpu => stream.rng.index(self.cpus.len()),
                NoisePlacement::LeastLoaded => {
                    // Wake placement is locality-biased: with some
                    // probability the daemon wakes *affine* to its
                    // previous CPU (uniformly random from the node's
                    // perspective) and searches like Linux's
                    // select_idle_sibling: the previous CPU itself, its
                    // SMT siblings, then the NUMA domain; if the whole
                    // local domain is busy, the slow path usually finds a
                    // remote idle CPU, otherwise the daemon preempts.
                    // Consequence: a fully packed socket (MT placement,
                    // or using nearly all cores) gets hit, while spare
                    // siblings/cores absorb the same wakes.
                    if stream.rng.chance(self.params.noise.daemon_local_wake_prob) {
                        let prev = stream.rng.index(self.cpus.len());
                        if self.cpus[prev].load() == 0 {
                            prev
                        } else {
                            let sib = self
                                .machine
                                .siblings_of(HwThreadId(prev))
                                .into_iter()
                                .map(|h| h.0)
                                .find(|&s| self.cpus[s].load() == 0);
                            let local = sib.or_else(|| {
                                self.machine
                                    .hw_threads_of_numa(self.machine.numa_of(HwThreadId(prev)))
                                    .into_iter()
                                    .map(|h| h.0)
                                    .find(|&s| self.cpus[s].load() == 0)
                            });
                            match local {
                                Some(c) => c,
                                None if stream
                                    .rng
                                    .chance(self.params.noise.cross_llc_escape_prob) =>
                                {
                                    Self::least_loaded_cpu(
                                        &mut stream.rng,
                                        &self.cpus,
                                        &self.machine,
                                        self.reference,
                                    )
                                }
                                None => prev,
                            }
                        }
                    } else {
                        Self::least_loaded_cpu(&mut stream.rng, &self.cpus, &self.machine, self.reference)
                    }
                }
            };
            (cpu, dur)
        };
        // A hotplugged-off CPU takes no interrupts/kernel work: redirect.
        let cpu = if self.cpus[cpu].offline {
            Self::least_loaded_cpu(&mut self.rng_place, &self.cpus, &self.machine, self.reference)
        } else {
            cpu
        };
        self.spawn_kernel(cpu, dur_ns);
        self.arm_noise(s);
    }

    fn handle_boundary(&mut self, cpu: usize, token: u64) {
        if token != self.cpus[cpu].token {
            return; // stale
        }
        self.touch(cpu);
        let Some(tid) = self.cpus[cpu].running else {
            return;
        };
        let ti = tid.0 as usize;
        // Completed timed micro?
        let mut finished_atomic: Option<ObjId> = None;
        if let Some(cur) = &self.tasks[ti].current {
            let rem = match cur {
                Timed::Cycles { rem, .. }
                | Timed::Ns { rem }
                | Timed::Bytes { rem }
                | Timed::AtomicNs { rem, .. } => *rem,
            };
            if rem <= 0.0 && self.tasks[ti].pending_overhead_ns <= 0.0 {
                if let Timed::AtomicNs { obj, .. } = cur {
                    finished_atomic = Some(*obj);
                }
                self.tasks[ti].current = None;
            }
        }
        if let Some(obj) = finished_atomic {
            self.atomic_done(obj);
        }
        // Quantum rotation.
        let rotate = self.tasks[ti].kind == TaskKind::User
            && !self.cpus[cpu].uq.is_empty()
            && self.now >= self.cpus[cpu].quantum_end;
        if rotate {
            self.set_running(cpu, None);
            self.cpus[cpu].uq.push_back(tid);
            self.attr_set_queued(tid);
        }
        self.commit(cpu);
    }

    fn handle_tick(&mut self, cpu: usize, token: u64) {
        if token != self.cpus[cpu].tick_token {
            return;
        }
        if let Some(tid) = self.cpus[cpu].running {
            self.counters.ticks += 1;
            let waiting = matches!(self.tasks[tid.0 as usize].state, TaskState::Waiting(_));
            if !waiting {
                self.touch(cpu);
                let cost = self.params.sched.tick_cost as f64;
                self.tasks[tid.0 as usize].pending_overhead_ns += cost;
                self.attr_pot(tid, cost, AttrSource::TimerTick);
                self.schedule_boundary(cpu);
            }
            self.queue.push(
                self.now + self.params.sched.tick_period,
                EventKind::TimerTick { cpu, token },
            );
        }
    }

    fn handle_freq_reeval(&mut self, socket: usize) {
        let active = self.sockets[socket].active_cores;
        // Pull the needed scalars out of the clock spec up front instead
        // of cloning it (the spec owns its turbo-bin table; cloning it on
        // every re-evaluation was pure allocation churn). `sustainable`
        // is computed once and used for both the retarget and the
        // headroom test — the spec is immutable in between, so the value
        // is the same one the two original calls produced.
        let sustainable = self.machine.clock.sustainable_ghz(active.max(1));
        // Track the clean (pulse-free, cap-free) trajectory for the
        // attribution ledger. Updated on every re-evaluation — the same
        // governor lag as the applied frequency — and nowhere else, so it
        // equals `applied_ghz` exactly whenever no pulse/cap is in force.
        self.sockets[socket].clean_ghz = sustainable;
        let base_ghz = self.machine.clock.base_ghz;
        let all_core = self
            .machine
            .clock
            .turbo_bins
            .last()
            .copied()
            .unwrap_or(self.machine.clock.max_ghz);
        let mut target = sustainable;
        if self.sockets[socket].pulse_active {
            target *= 1.0 - self.params.freq.pulse_depth;
            target = target.max(base_ghz * 0.9);
        }
        if let Some(cap) = self.sockets[socket].cap_ghz {
            // Thermal-capping fault: hard ceiling, below any turbo bin.
            target = target.min(cap);
        }
        if (target - self.sockets[socket].applied_ghz).abs() > 1e-9 {
            self.counters.freq_transitions += 1;
            // Stamp the retarget with the socket index: a socket-wide
            // event has no single core, and the socket is what Perfetto
            // users correlate against the counter tracks.
            self.trace_global(InstantKind::FreqRetarget, socket as u32);
            // Reprice everything busy on this socket. The optimized path
            // walks the precomputed per-socket CPU list (ascending, the
            // same order the reference scan over all CPUs visits) into a
            // reused scratch buffer; the reference path re-filters the
            // full CPU range through the spec lookups every time.
            let mut cpus = std::mem::take(&mut self.scratch_cpus);
            cpus.clear();
            if self.reference {
                cpus.extend((0..self.cpus.len()).filter(|&c| {
                    self.socket_of_cpu(c) == socket && self.cpus[c].running.is_some()
                }));
            } else {
                cpus.extend(
                    self.socket_cpus[socket]
                        .iter()
                        .copied()
                        .filter(|&c| self.cpus[c].running.is_some()),
                );
            }
            for &c in &cpus {
                self.touch(c);
            }
            self.sockets[socket].applied_ghz = target;
            for &c in &cpus {
                self.schedule_boundary(c);
            }
            cpus.clear();
            self.scratch_cpus = cpus;
        }
        // Arm or disarm the pulse process based on turbo headroom.
        let headroom = sustainable - all_core;
        let unstable = active > 0 && headroom > self.params.freq.stable_headroom_ghz;
        if unstable && !self.sockets[socket].pulse_armed {
            self.sockets[socket].pulse_armed = true;
            self.sockets[socket].pulse_token += 1;
            let token = self.sockets[socket].pulse_token;
            let dt = self.sockets[socket]
                .rng
                .exp(self.params.freq.pulse_mean_interval as f64);
            self.queue.push(
                self.now.saturating_add(from_ns_f64(dt)),
                EventKind::FreqPulse { socket, token },
            );
        } else if !unstable && self.sockets[socket].pulse_armed {
            self.sockets[socket].pulse_armed = false;
            self.sockets[socket].pulse_token += 1;
            if self.sockets[socket].pulse_active {
                self.sockets[socket].pulse_active = false;
                self.queue.push(self.now, EventKind::FreqReeval { socket });
            }
        }
    }

    fn handle_freq_pulse(&mut self, socket: usize, token: u64) {
        if token != self.sockets[socket].pulse_token {
            return;
        }
        let sock = &mut self.sockets[socket];
        let dt = if sock.pulse_active {
            // Pulse ends; next pulse after an interval.
            sock.pulse_active = false;
            sock.rng.exp(self.params.freq.pulse_mean_interval as f64)
        } else {
            // Pulse begins; ends after its duration.
            sock.pulse_active = true;
            sock.rng.exp(self.params.freq.pulse_mean_duration as f64)
        };
        self.queue.push(
            self.now.saturating_add(from_ns_f64(dt)),
            EventKind::FreqPulse { socket, token },
        );
        self.handle_freq_reeval(socket);
    }

    fn handle_freq_sample(&mut self) {
        let Some(cfg) = self.logger else {
            return;
        };
        let idle_ghz = (self.machine.clock.base_ghz * 0.6) as f32;
        let core_ghz: Vec<f32> = (0..self.machine.n_cores())
            .map(|core| {
                if self.core_busy[core] > 0 {
                    let socket = if self.reference {
                        self.machine
                            .socket_of_numa(
                                self.machine.numa_of_core(ompvar_topology::CoreId(core)),
                            )
                            .0
                    } else {
                        self.core_socket[core] as usize
                    };
                    self.sockets[socket].applied_ghz as f32
                } else {
                    idle_ghz
                }
            })
            .collect();
        self.freq_samples.push(FreqSample {
            time: self.now,
            core_ghz,
        });
        if let Some(cpu) = cfg.cpu {
            if cfg.cost > 0 && !self.cpus[cpu].offline {
                self.spawn_kernel(cpu, cfg.cost as f64);
            }
        }
        self.queue.push(self.now + cfg.period, EventKind::FreqSample);
    }

    /// Run the simulation until all user tasks finish or `limit` virtual
    /// time is reached.
    ///
    /// # Errors
    ///
    /// * [`SimError::Deadlock`] — the event queue drained with user tasks
    ///   unfinished, or the limit tripped while every unfinished task was
    ///   spin-waiting (nothing left can release a spin-waiter); the error
    ///   names each blocked task and the barrier/lock it waits on.
    /// * [`SimError::TimeLimitExceeded`] — the limit tripped with tasks
    ///   still making progress; carries the partial report.
    /// * [`SimError::EventBudgetExceeded`] — see
    ///   [`Simulator::set_event_budget`].
    /// * [`SimError::ObjectTypeMismatch`] — a malformed program addressed
    ///   a sync object of the wrong kind.
    pub fn run(mut self, limit: Time) -> Result<SimReport, SimError> {
        self.start();
        if let Some(err) = self.fatal.take() {
            return Err(err);
        }
        while self.users_remaining > 0 {
            if !self.reference {
                self.fast_forward_idle(limit);
            }
            let Some((t, ev)) = self.queue.pop() else {
                return Err(SimError::Deadlock {
                    time: self.now,
                    blocked: self.blocked_tasks(),
                });
            };
            if t > limit {
                return Err(self.limit_error(limit));
            }
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.counters.events += 1;
            if let Some(budget) = self.event_budget {
                if self.counters.events > budget {
                    let partial = Box::new(self.make_report());
                    return Err(SimError::EventBudgetExceeded { budget, partial });
                }
            }
            match ev {
                EventKind::CpuBoundary { cpu, token } => self.handle_boundary(cpu, token),
                EventKind::NoiseArrival { src } => self.handle_noise_arrival(src as usize),
                EventKind::TimerTick { cpu, token } => self.handle_tick(cpu, token),
                EventKind::LoadBalance => {
                    self.load_balance();
                    self.queue.push(
                        self.now + self.params.sched.balance_interval,
                        EventKind::LoadBalance,
                    );
                }
                EventKind::FreqReeval { socket } => self.handle_freq_reeval(socket),
                EventKind::FreqPulse { socket, token } => self.handle_freq_pulse(socket, token),
                EventKind::FreqSample => self.handle_freq_sample(),
                EventKind::FaultStart { idx } => self.handle_fault_start(idx as usize),
                EventKind::FaultEnd { idx } => self.handle_fault_end(idx as usize),
                EventKind::FaultStormTick { idx } => self.handle_fault_storm_tick(idx as usize),
            }
            if let Some(err) = self.fatal.take() {
                return Err(err);
            }
        }
        Ok(self.make_report())
    }

    /// Idle-period fast-forward: while the earliest pending event is a
    /// pure self-rescheduling no-op, a whole chain of them can be
    /// absorbed in O(1) heap operations instead of one pop/push per
    /// event. Two event kinds qualify:
    ///
    /// * a valid [`EventKind::TimerTick`] for a CPU whose task is
    ///   spin-waiting — the tick handler's entire effect is
    ///   `events += 1`, `ticks += 1`, and a re-push one period later;
    /// * an [`EventKind::LoadBalance`] while every CPU's user queue is
    ///   empty — `load_balance`'s per-CPU `while` condition fails
    ///   everywhere, so the pass mutates nothing and draws no RNG, and
    ///   the handler's entire effect is `events += 1` plus the re-push.
    ///
    /// This is where a deadlocked-but-ticking (or merely
    /// balance-polling) run stops costing wall-clock time proportional
    /// to the virtual time limit.
    ///
    /// Bit-identity with the unbatched loop is preserved exactly:
    ///
    /// * only events that would pop *next* are absorbed — event `i ≥ 2`
    ///   of a batch must beat every other pending event strictly (its
    ///   fresh seq loses time ties), bounded by
    ///   [`EventQueue::second_time`]. Nothing else pops inside a batch,
    ///   so the eligibility predicate cannot change mid-batch;
    /// * `now` and the counters advance by the same amounts, and
    ///   [`EventQueue::bump_seq`] burns the seq numbers the absorbed
    ///   re-pushes would have consumed, so every future FIFO tie-break
    ///   is unchanged;
    /// * events past `limit` or past the event budget are left in the
    ///   queue for the main loop to trip the error path on, with `now`
    ///   and the counters in the identical state.
    fn fast_forward_idle(&mut self, limit: Time) {
        loop {
            let Some((t0, ev)) = self.queue.peek() else {
                return;
            };
            // Eligibility + period per kind; `ticks` says whether the
            // absorbed events also count into `counters.ticks`.
            let (period, ticks) = match *ev {
                EventKind::TimerTick { cpu, token } => {
                    if token != self.cpus[cpu].tick_token {
                        return;
                    }
                    let Some(tid) = self.cpus[cpu].running else {
                        return;
                    };
                    if !matches!(self.tasks[tid.0 as usize].state, TaskState::Waiting(_)) {
                        return;
                    }
                    (self.params.sched.tick_period, true)
                }
                EventKind::LoadBalance => {
                    if !self.cpus.iter().all(|c| c.uq.is_empty()) {
                        return;
                    }
                    (self.params.sched.balance_interval, false)
                }
                _ => return,
            };
            if t0 > limit {
                return;
            }
            if period == 0 {
                return;
            }
            if let Some(b) = self.event_budget {
                if self.counters.events >= b {
                    // The head event itself will trip the budget; let the
                    // main loop pop it and take the error path.
                    return;
                }
            }
            // How many events beyond the head can be absorbed?
            let by_second = match self.queue.second_time() {
                // Event i ≥ 2 must pop strictly before the next other
                // event: t0 + e*period ≤ second - 1.
                Some(second) => (second.saturating_sub(1).saturating_sub(t0)) / period,
                None => u64::MAX,
            };
            let by_limit = (limit - t0) / period;
            let mut extra = by_second.min(by_limit);
            if let Some(b) = self.event_budget {
                // Absorb at most up to the budget line; the first event
                // past it must be popped live so the error fires with the
                // counters in the unbatched state.
                extra = extra.min(b - self.counters.events - 1);
            }
            let k = extra + 1;
            let (_, ev) = self.queue.pop().expect("peeked event vanished");
            self.now = t0 + extra * period;
            self.counters.events += k;
            if ticks {
                self.counters.ticks += k;
            }
            // Each absorbed event's re-push would have consumed one seq
            // number; burn all but the last, which the real re-push takes.
            self.queue.bump_seq(k - 1);
            self.queue.push(self.now + period, ev);
        }
    }

    /// Build the report for the current state (consuming markers/samples).
    fn make_report(&mut self) -> SimReport {
        let attribution = self.harvest_attribution();
        SimReport {
            final_time: self.now,
            unfinished: self.users_remaining,
            markers: std::mem::take(&mut self.markers),
            freq_samples: std::mem::take(&mut self.freq_samples),
            counters: self.counters,
            task_stats: self
                .user_tasks
                .iter()
                .map(|&t| (t, self.tasks[t.0 as usize].stats))
                .collect(),
            obj_effects: self.objs.iter().map(obj_effects).collect(),
            trace: self.trace.take().map(Trace::new),
            attribution,
        }
    }

    /// Harvest the attribution ledger into the report form (consuming it,
    /// like the trace buffer). Open intervals — a task still spin-waiting
    /// on its CPU, or still queued — are folded in read-only, so
    /// harvesting a partial run (time limit, event budget) perturbs no
    /// engine state.
    fn harvest_attribution(&mut self) -> Option<RunAttribution> {
        let mut a = self.attr.take()?;
        // Spin time since the last touch of a still-waiting task has not
        // been booked yet: fold it into the open episode.
        for c in &self.cpus {
            if let Some(tid) = c.running {
                if matches!(self.tasks[tid.0 as usize].state, TaskState::Waiting(_)) {
                    if let Some(pt) = a.per_task.get_mut(tid.0 as usize) {
                        pt.wait_acc += self.now.saturating_sub(c.since) as f64;
                    }
                }
            }
        }
        let noise_cum = a.noise_cum;
        let mut tail = [0.0f64; N_SOURCES];
        let mut threads: Vec<ThreadAttribution> = Vec::with_capacity(self.user_tasks.len());
        for &tid in &self.user_tasks {
            let rank = self.tasks[tid.0 as usize].rank;
            let Some(pt) = a.per_task.get_mut(tid.0 as usize) else { continue };
            // Final-classify the open wait episode, if any.
            let wait = std::mem::take(&mut pt.wait_acc);
            if wait > 0.0 {
                let noise_part = wait.min((noise_cum - pt.noise_snap).max(0.0));
                pt.ledger[AttrSource::NoiseDelayedArrival.index()] += noise_part;
                pt.ledger[AttrSource::SyncContention.index()] += wait - noise_part;
                tail[AttrSource::NoiseDelayedArrival.index()] += noise_part;
                tail[AttrSource::SyncContention.index()] += wait - noise_part;
            }
            // Close an open descheduled interval.
            if let Some(from) = pt.queued_from.take() {
                let q = self.now.saturating_sub(from) as f64;
                pt.ledger[AttrSource::Preemption.index()] += q;
                tail[AttrSource::Preemption.index()] += q;
            }
            let mut th = ThreadAttribution::new(rank);
            th.useful_ns = pt.useful;
            th.by_source = pt.ledger;
            threads.push(th);
        }
        if tail.iter().any(|&w| w > 0.0) {
            for (i, &w) in tail.iter().enumerate() {
                a.totals[i] += w;
            }
            a.push_sample(self.now);
        }
        Some(RunAttribution {
            threads,
            samples: std::mem::take(&mut a.samples),
        })
    }

    /// Classify a tripped time limit: if every unfinished user task is
    /// spin-waiting, nothing can ever release it (spin-waiters are only
    /// woken by other user tasks) — that is a deadlock kept "alive" by
    /// background events. Otherwise the run was genuinely still working.
    fn limit_error(&mut self, limit: Time) -> SimError {
        let all_waiting = self.user_tasks.iter().all(|&t| {
            matches!(
                self.tasks[t.0 as usize].state,
                TaskState::Waiting(_) | TaskState::Done
            )
        });
        if all_waiting {
            SimError::Deadlock {
                time: self.now,
                blocked: self.blocked_tasks(),
            }
        } else {
            SimError::TimeLimitExceeded {
                limit,
                partial: Box::new(self.make_report()),
            }
        }
    }

    /// Diagnostics for every unfinished user task: what is it blocked on?
    fn blocked_tasks(&self) -> Vec<BlockedTask> {
        self.user_tasks
            .iter()
            .filter_map(|&tid| {
                let t = &self.tasks[tid.0 as usize];
                let wait = match t.state {
                    TaskState::Done => return None,
                    TaskState::Runnable => BlockedOn::Starved,
                    TaskState::Waiting(w) => match w {
                        WaitKind::Barrier(obj) => match &self.objs[obj.0 as usize] {
                            SyncObj::Barrier(b) => BlockedOn::Barrier {
                                obj,
                                arrived: b.arrived,
                                team: b.n,
                            },
                            _ => BlockedOn::Starved,
                        },
                        WaitKind::Lock(obj) => match &self.objs[obj.0 as usize] {
                            SyncObj::Lock(l) => BlockedOn::Lock {
                                obj,
                                holder: l.holder,
                            },
                            _ => BlockedOn::Starved,
                        },
                        WaitKind::Ticket { obj, iter } => match &self.objs[obj.0 as usize] {
                            SyncObj::Loop(l) => BlockedOn::OrderedTicket {
                                obj,
                                iter,
                                next: l.ordered_next,
                            },
                            _ => BlockedOn::Starved,
                        },
                        WaitKind::TaskPool(obj) => match &self.objs[obj.0 as usize] {
                            SyncObj::TaskPool(p) => BlockedOn::TaskPool {
                                obj,
                                outstanding: p.outstanding,
                            },
                            _ => BlockedOn::Starved,
                        },
                    },
                };
                Some(BlockedTask { task: tid, wait })
            })
            .collect()
    }
}

/// Snapshot one sync object's effect counters for the report.
fn obj_effects(o: &SyncObj) -> ObjEffects {
    match o {
        SyncObj::Barrier(b) => ObjEffects::Barrier {
            arrivals: b.arrivals,
        },
        SyncObj::Lock(l) => ObjEffects::Lock { entries: l.entries },
        SyncObj::Loop(l) => ObjEffects::Loop {
            iters: l.iters_executed,
            passes: l.passes,
            ordered_done: l.ordered_done,
        },
        SyncObj::Atomic(a) => ObjEffects::Atomic { ops: a.ops },
        SyncObj::Single(s) => ObjEffects::Single {
            entries: s.count,
            winners: s.wins,
        },
        SyncObj::TaskPool(p) => ObjEffects::TaskPool {
            spawned: p.spawned,
            executed: p.executed,
        },
    }
}
