//! Pinning study (paper §5.2, Figure 4 at reduced scale): run the EPCC
//! syncbench `reduction` micro-benchmark on a simulated Dardel node with
//! unbound threads and with `OMP_PROC_BIND=close` pinning, and compare
//! the variability.
//!
//! ```text
//! cargo run --release --example pinning_study
//! ```

use ompvar::core::Table;
use ompvar::epcc::syncbench::{self, SyncConstruct};
use ompvar::epcc::{run_many, EpccConfig};
use ompvar::harness::Platform;

fn main() {
    let threads = 64;
    let runs = 6;
    let cfg = EpccConfig::syncbench_default().fast(30);
    let pinned_rt = Platform::Dardel.pinned_rt(threads);
    let unbound_rt = Platform::Dardel.unbound_rt();

    let inner =
        syncbench::calibrate_inner_reps(&pinned_rt, &cfg, SyncConstruct::Reduction, threads, 40);
    let region = syncbench::region_with_inner(&cfg, SyncConstruct::Reduction, threads, inner);

    println!(
        "syncbench reduction, {threads} threads on simulated Dardel, {} reps × {runs} runs\n",
        cfg.outer_reps
    );
    let unbound = run_many(&unbound_rt, &region, runs, 1);
    let pinned = run_many(&pinned_rt, &region, runs, 1);

    let mut t = Table::new(
        "per-run repetition statistics (µs)",
        &["run", "unbound mean", "unbound max/min", "pinned mean", "pinned max/min"],
    );
    for i in 0..runs {
        let u = unbound.runs[i].summary();
        let p = pinned.runs[i].summary();
        t.row(&[
            format!("{}", i + 1),
            format!("{:.1}", u.mean),
            format!("{:.1}", u.spread()),
            format!("{:.1}", p.mean),
            format!("{:.2}", p.spread()),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\npooled max/min spread: unbound {:.0}×, pinned {:.2}×",
        unbound.pooled().spread(),
        pinned.pooled().spread()
    );
    println!(
        "→ pinning removes the run-to-run and intra-run blow-ups caused by\n  wake migration and thread stacking (paper §5.2)."
    );
}
