//! Quickstart: describe an OpenMP-style region once, run it on both
//! backends, and characterize its variability.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ompvar::core::{RunSet, Summary};
use ompvar::epcc::run_many;
use ompvar::rt::{Construct, NativeRuntime, RegionRunner, RegionSpec, RtConfig, Schedule, SimRuntime};
use ompvar::topology::{MachineSpec, Places};

fn main() {
    // A region: 20 timed repetitions of {a dynamic parallel-for of 256
    // 5 µs iterations, then a reduction}. Every thread executes this
    // SPMD-style; the master's marker timestamps give per-rep times.
    let n_threads = 4;
    let region = RegionSpec::measured(
        n_threads,
        20, // outer repetitions (timed)
        1,  // inner repetitions per timed rep
        vec![
            Construct::ParallelFor {
                schedule: Schedule::Dynamic { chunk: 1 },
                total_iters: 256,
                body_us: 5.0,
                ordered_us: None,
                nowait: false,
            },
            Construct::Reduction { body_us: 0.5 },
        ],
    );

    // Backend 1: the native runtime — real threads on this host, using
    // the crate's own barrier/workshare primitives.
    let native = NativeRuntime::new(RtConfig::unbound());
    let res = native.run_region(&region, 0).expect("region run completes");
    let s = Summary::of(res.reps());
    println!(
        "native : {} reps, mean {:8.1} µs, cv {:.4}, min {:8.1}, max {:8.1}",
        s.n, s.mean, s.cv, s.min, s.max
    );

    // Backend 2: the simulated runtime — the same region on a modeled
    // 32-core Vera node with OS noise, DVFS and pinning, deterministic
    // in the seed.
    let machine = MachineSpec::vera();
    let sim = SimRuntime::new(
        machine,
        RtConfig::pinned_close(Places::Cores(Some(n_threads))),
    );
    let res = sim.run_region(&region, 42).expect("region run completes");
    let s = Summary::of(res.reps());
    println!(
        "sim    : {} reps, mean {:8.1} µs, cv {:.4}, min {:8.1}, max {:8.1}",
        s.n, s.mean, s.cv, s.min, s.max
    );

    // The paper's protocol: several independent runs, then run-to-run
    // versus intra-run variability decomposition.
    let rs: RunSet = run_many(&sim, &region, 10, 42);
    let (between, within) = rs.variance_decomposition();
    println!(
        "10 simulated runs: run-mean spread {:.4}, variance {:.0}% between-run / {:.0}% within-run",
        rs.run_spread(),
        between * 100.0,
        within * 100.0
    );
    if let Some(outlier) = rs.outlier_runs(3.5).first() {
        println!("outlier run detected: run #{}", outlier + 1);
    }
}
