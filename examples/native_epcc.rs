//! Run the EPCC syncbench suite on the *native* backend — real threads on
//! this host, using the crate's own synchronization primitives — and
//! print per-construct overheads with a repetition-time histogram for the
//! most expensive one.
//!
//! ```text
//! cargo run --release --example native_epcc [n_threads]
//! ```

use ompvar::core::{render_histogram, Histogram, Summary};
use ompvar::epcc::syncbench::{self, SyncConstruct};
use ompvar::epcc::EpccConfig;
use ompvar::rt::{NativeRuntime, RegionRunner, RtConfig};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get().min(4))
                .unwrap_or(2)
        });
    let cfg = EpccConfig::syncbench_default().fast(20);
    let rt = NativeRuntime::new(RtConfig::unbound());
    println!("EPCC syncbench, native backend, {n} threads, 20 reps\n");
    println!("{:14} {:>12} {:>10} {:>10}", "construct", "per-op µs", "cv", "max/min");
    let mut worst: Option<(SyncConstruct, Vec<f64>)> = None;
    for c in SyncConstruct::ALL {
        let inner = syncbench::calibrate_inner_reps(&rt, &cfg, c, n, 200);
        let region = syncbench::region_with_inner(&cfg, c, n, inner);
        let res = rt.run_region(&region, 0).expect("region run completes");
        let s = Summary::of(res.reps());
        let per_op = syncbench::overhead_us(&cfg, c, s.mean, inner);
        println!(
            "{:14} {:>12.3} {:>10.4} {:>10.2}",
            c.label(),
            per_op,
            s.cv,
            s.spread()
        );
        if worst.as_ref().map(|(_, r)| Summary::of(r).mean < s.mean).unwrap_or(true) {
            worst = Some((c, res.reps().to_vec()));
        }
    }
    if let Some((c, reps)) = worst {
        println!(
            "\nrepetition-time distribution of `{}` (µs per rep):",
            c.label()
        );
        print!("{}", render_histogram(&Histogram::of(&reps, 10), 40));
    }
    println!("\n(on a small or oversubscribed host these overheads are noisy —\n the simulated backend exists for controlled studies)");
}
