//! Frequency study (paper §5.4, Figures 6/7 at reduced scale): the same
//! 16 threads on a simulated Vera node, either on one NUMA domain or
//! split across both, with the frequency logger running on a spare core.
//! Prints an ASCII frequency trace of a benchmark core for both
//! placements.
//!
//! ```text
//! cargo run --release --example frequency_study
//! ```

use ompvar::core::FreqTrace;
use ompvar::epcc::{run_many_full, schedbench, EpccConfig};
use ompvar::harness::fig67::{outcome, Driver, Placement};
use ompvar::harness::{ExpOptions, Platform};
use ompvar::rt::{RegionRunner, Schedule};

fn sparkline(series: &[f32]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = series.iter().cloned().fold(f32::INFINITY, f32::min);
    let hi = series.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let span = (hi - lo).max(1e-6);
    series
        .iter()
        .map(|&v| GLYPHS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

fn main() {
    // Raw frequency traces of core 0 under both placements.
    let mut cfg = EpccConfig::schedbench_default().fast(30);
    cfg.iters_per_thr = 512;
    let region = schedbench::region(&cfg, Schedule::Static { chunk: 1 }, 16);
    for (label, rt) in [
        ("16 cores on 1 NUMA ", Platform::Vera.numa_rt(&[0], 16)),
        ("8+8 cores, 2 NUMAs ", Platform::Vera.numa_rt(&[0, 1], 8)),
    ] {
        let res = rt.run_region(&region, 3).expect("region run completes");
        let trace = FreqTrace::new(
            res.freq_samples
                .iter()
                .map(|s| (s.time, s.core_ghz.clone()))
                .collect(),
        )
        .expect("simulated logger emits ordered, rectangular samples");
        let series = trace.core_series(0);
        let (lo, hi) = trace.band(0);
        println!(
            "{label} core0 {:.2}–{:.2} GHz, {:3} transitions  {}",
            lo,
            hi,
            trace.transitions(0, 0.05),
            sparkline(&series[..series.len().min(100)])
        );
    }

    // The aggregate comparison the paper draws (Fig 6/7).
    println!();
    let opts = ExpOptions::fast();
    for driver in [Driver::Sched, Driver::Sync] {
        let one = outcome(&opts, driver, Placement::OneNuma);
        let two = outcome(&opts, driver, Placement::TwoNumas);
        println!(
            "{:?}: pooled cv {:.5} (1 NUMA) vs {:.5} (2 NUMAs); freq transitions/core/s {:.2} vs {:.2}",
            driver,
            one.runs.pooled().cv,
            two.runs.pooled().cv,
            one.transitions_per_core_sec,
            two.transitions_per_core_sec,
        );
    }
    // Keep the unused import honest: run_many_full is the API examples
    // would use to collect traces across runs.
    let _ = run_many_full::<ompvar::rt::SimRuntime>;
    println!(
        "\n→ 16 active cores pin the socket at its stable all-core turbo;\n  \
         8 active cores per socket sit in an unstable few-core turbo state\n  \
         whose droop pulses show up as execution-time variability (paper §5.4)."
    );
}
