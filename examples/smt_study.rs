//! SMT study (paper §5.3, Figure 5 at reduced scale): the same number of
//! threads placed one-per-core (ST, siblings free for the OS) versus
//! packed two-per-core (MT), on a simulated Dardel node.
//!
//! ```text
//! cargo run --release --example smt_study
//! ```

use ompvar::core::Table;
use ompvar::epcc::syncbench::{self, SyncConstruct};
use ompvar::epcc::{run_many, EpccConfig};
use ompvar::harness::Platform;

fn main() {
    let threads = 32;
    let runs = 6;
    let cfg = EpccConfig::syncbench_default().fast(60);
    let st = Platform::Dardel.pinned_rt(threads); // 32 cores, siblings idle
    let mt = Platform::Dardel.pinned_mt_rt(threads); // 16 cores × 2 contexts

    let mut t = Table::new(
        &format!("syncbench mean per-run CV, {threads} threads, simulated Dardel"),
        &["construct", "ST cv", "MT cv", "MT/ST"],
    );
    for c in [
        SyncConstruct::Barrier,
        SyncConstruct::For,
        SyncConstruct::Single,
        SyncConstruct::Ordered,
        SyncConstruct::Reduction,
    ] {
        let inner = syncbench::calibrate_inner_reps(&st, &cfg, c, threads, 30);
        let region = syncbench::region_with_inner(&cfg, c, threads, inner);
        let cv = |rs: &ompvar::core::RunSet| {
            let v = rs.run_cvs();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let st_cv = cv(&run_many(&st, &region, runs, 7));
        let mt_cv = cv(&run_many(&mt, &region, runs, 7));
        t.row(&[
            c.label().to_string(),
            format!("{st_cv:.5}"),
            format!("{mt_cv:.5}"),
            format!("{:.1}×", mt_cv / st_cv.max(1e-9)),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\n→ with both hardware threads of a core running benchmark threads,\n  \
         per-core kernel housekeeping has no idle sibling to run on and must\n  \
         preempt — repetition CVs rise accordingly (paper §5.3)."
    );
}
