//! Extension (paper §6 future work): a *compute-intensive* kernel class.
//!
//! The paper's delay loops are dependency-chain bound and share an SMT
//! core almost for free; its future work asks how FP-/cache-intensive
//! kernels behave. The runtime's `Compute` construct carries an SMT
//! co-run class, so the question is directly expressible: the same region
//! run with latency-bound vs. throughput-bound bodies under ST and MT
//! placements.
//!
//! ```text
//! cargo run --release --example compute_intensive
//! ```

use ompvar::core::Summary;
use ompvar::harness::Platform;
use ompvar::rt::{Construct, RegionRunner, RegionSpec};
use ompvar::sim::task::CorunClass;

fn region(class: CorunClass, n: usize) -> RegionSpec {
    RegionSpec::measured(
        n,
        20,
        1,
        vec![
            Construct::Compute {
                cycles: 30.0e6, // ~10 ms at 3 GHz
                class,
            },
            Construct::Barrier,
        ],
    )
}

fn main() {
    let n = 32;
    println!("32 threads on simulated Dardel, 20 reps of a 30M-cycle kernel\n");
    println!(
        "{:12} {:>12} {:>12} {:>9}",
        "class", "ST mean µs", "MT mean µs", "MT/ST"
    );
    for (label, class) in [
        ("latency", CorunClass::Latency),
        ("mixed", CorunClass::Mixed),
        ("throughput", CorunClass::Throughput),
    ] {
        let st = Platform::Dardel.pinned_rt(n).run_region(&region(class, n), 1).expect("region run completes");
        let mt = Platform::Dardel
            .pinned_mt_rt(n)
            .run_region(&region(class, n), 1).expect("region run completes");
        let st_mean = Summary::of(st.reps()).mean;
        let mt_mean = Summary::of(mt.reps()).mean;
        println!(
            "{:12} {:>12.1} {:>12.1} {:>8.2}×",
            label,
            st_mean,
            mt_mean,
            mt_mean / st_mean
        );
    }
    println!(
        "\n→ latency-bound kernels (like EPCC delay loops) barely pay for SMT\n  \
         co-running, while throughput-bound kernels take the full corun\n  \
         penalty — so the paper's ST-vs-MT *throughput* verdict depends on\n  \
         the kernel class, but the *stability* verdict (siblings absorb OS\n  \
         noise) holds for all classes."
    );
}
